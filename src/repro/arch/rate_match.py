"""Zero-Overhead Rate Matching (paper Section 2.4).

Columns must compute at exactly the rate their consumers expect; a
column clocked faster than its task needs would overrun downstream
buffers.  Rather than padding application code with nops, each SIMD
controller carries a programmable counter that periodically injects
nop cycles into its tiles: every ``interval`` issued cycles, ``nops``
idle cycles follow, throttling throughput by interval/(interval+nops)
with per-cycle granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


class ZormCounter:
    """The per-column rate-matching counter."""

    def __init__(self, interval: int = 0, nops: int = 0) -> None:
        if interval < 0 or nops < 0:
            raise ConfigurationError("interval and nops must be >= 0")
        if interval == 0 and nops > 0:
            raise ConfigurationError("nops without an interval never fire")
        self.interval = interval
        self.nops = nops
        self._issued_in_window = 0
        self._nops_remaining = 0
        self.total_nops = 0

    @property
    def enabled(self) -> bool:
        """Whether throttling is configured."""
        return self.interval > 0 and self.nops > 0

    @property
    def throughput_factor(self) -> float:
        """Fraction of cycles that issue real work."""
        if not self.enabled:
            return 1.0
        return self.interval / (self.interval + self.nops)

    def should_insert_nop(self) -> bool:
        """Check (and consume) whether this cycle must be a nop."""
        if not self.enabled:
            return False
        if self._nops_remaining > 0:
            self._nops_remaining -= 1
            self.total_nops += 1
            return True
        return False

    def note_issue(self) -> None:
        """Record one issued instruction; may arm a nop burst."""
        if not self.enabled:
            return
        self._issued_in_window += 1
        if self._issued_in_window >= self.interval:
            self._issued_in_window = 0
            self._nops_remaining = self.nops


def rate_match_settings(
    produced_rate: float, consumed_rate: float, max_interval: int = 4096
) -> tuple:
    """Compute (interval, nops) throttling a producer to a consumer.

    Returns the smallest-period setting whose throughput factor does
    not exceed ``consumed_rate / produced_rate``.  A producer already
    at or below the consumer's rate needs no throttling: (0, 0).
    """
    if produced_rate <= 0 or consumed_rate <= 0:
        raise ConfigurationError("rates must be positive")
    if consumed_rate >= produced_rate:
        return (0, 0)
    ratio = consumed_rate / produced_rate
    best = None
    for interval in range(1, max_interval + 1):
        # smallest nops with interval/(interval+nops) <= ratio
        nops = -(-interval * (1.0 - ratio) // ratio)  # ceil
        nops = int(nops)
        factor = interval / (interval + nops)
        error = ratio - factor
        if error < 0:
            continue
        if best is None or error < best[0]:
            best = (error, interval, nops)
        if error == 0:
            break
    if best is None:
        raise ConfigurationError("no feasible rate-matching setting")
    return (best[1], best[2])
