"""Per-column SIMD controller (paper Section 2.2).

One controller holds the column's program memory and program counter,
executes every control instruction itself, and forwards only compute
instructions to the four tiles.  Instead of branch prediction it uses
a short pipeline that resolves branches early, costing exactly one
stall cycle per conditional branch and zero for zero-overhead loops.
The controller also hosts the Zero-Overhead Rate-Matching counter.

Branch conditions are data values; the paper connects the controller
to the segmented bus to receive them.  We model the conventional case:
the condition register is read from tile 0 of the column (the
``condition_source`` callback).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.arch.rate_match import ZormCounter
from repro.isa.instructions import ALL_TILES_MASK, Instruction, Opcode
from repro.isa.program import MAX_LOOP_DEPTH, Program

#: Reasons a cycle carries no compute instruction.
BUBBLE_HALTED = "halted"
BUBBLE_BRANCH_STALL = "branch_stall"
BUBBLE_ZORM = "zorm_nop"


class SimdController:
    """Fetch/issue engine for one column."""

    def __init__(
        self,
        program: Program,
        condition_source: Callable | None = None,
        zorm: ZormCounter | None = None,
        name: str = "column",
    ) -> None:
        self.program = program
        # The program is immutable for the controller's lifetime; its
        # length and instruction list are hoisted off the fetch path.
        self._program_len = len(program)
        self._instructions = program.instructions
        self.condition_source = condition_source
        self.zorm = zorm or ZormCounter()
        self.name = name
        self.pc = 0
        self.mask = ALL_TILES_MASK
        self.halted = False
        self._loop_stack: list = []
        self._stall_pending = False
        self._pending: Instruction | None = None
        # statistics
        self.issued = 0
        self.control_executed = 0
        self.branch_stalls = 0
        self.bubbles = 0

    # ------------------------------------------------------------------
    # control execution
    # ------------------------------------------------------------------
    def _condition(self, register: str) -> int:
        if self.condition_source is None:
            raise SimulationError(
                f"{self.name}: conditional branch with no condition source"
            )
        return self.condition_source(register)

    def _execute_control(self, instr: Instruction) -> None:
        """Run one control instruction; updates pc."""
        op = instr.opcode
        self.control_executed += 1
        if op is Opcode.HALT:
            self.halted = True
        elif op is Opcode.JUMP:
            self.pc = instr.target
        elif op is Opcode.TMASK:
            if not 0 <= instr.imm <= ALL_TILES_MASK:
                raise SimulationError(f"{self.name}: bad tile mask")
            self.mask = instr.imm
            self.pc += 1
        elif op is Opcode.LOOP:
            if len(self._loop_stack) >= MAX_LOOP_DEPTH:
                raise SimulationError(f"{self.name}: loop stack overflow")
            self._loop_stack.append([self.pc + 1, instr.imm - 1])
            self.pc += 1
        elif op is Opcode.ENDLOOP:
            if not self._loop_stack:
                raise SimulationError(f"{self.name}: endloop without loop")
            top = self._loop_stack[-1]
            if top[1] > 0:
                top[1] -= 1
                self.pc = top[0]
            else:
                self._loop_stack.pop()
                self.pc += 1
        else:  # conditional branch
            value = self._condition(instr.srcs[0])
            taken = {
                Opcode.BEQ: value == 0,
                Opcode.BNE: value != 0,
                Opcode.BLT: value < 0,
                Opcode.BGE: value >= 0,
            }[op]
            self.pc = instr.target if taken else self.pc + 1
            self._stall_pending = True
            self.branch_stalls += 1

    # ------------------------------------------------------------------
    # issue interface
    # ------------------------------------------------------------------
    def next_instruction(self) -> Instruction | None:
        """The compute instruction for this tile cycle, or None.

        Idempotent until :meth:`commit` is called, so the column can
        refuse to issue (comm-buffer stall) without losing the
        instruction.  ``None`` means a bubble: halt, branch stall, or
        a ZORM nop; bubbles self-commit.
        """
        if self._pending is not None:
            return self._pending
        if self.halted:
            self.bubbles += 1
            return None
        if self._stall_pending:
            self._stall_pending = False
            self.bubbles += 1
            return None
        if self.zorm.should_insert_nop():
            self.bubbles += 1
            return None
        # Resolve zero-cost control until a compute instruction appears.
        program_len = self._program_len
        instructions = self._instructions
        budget = program_len + 1
        while True:
            if self.pc >= program_len:
                self.halted = True
                self.bubbles += 1
                return None
            instr = instructions[self.pc]
            if not instr.is_control:
                self._pending = instr
                return instr
            self._execute_control(instr)
            if self.halted or self._stall_pending:
                self.bubbles += 1
                if self._stall_pending:
                    self._stall_pending = False
                return None
            budget -= 1
            if budget <= 0:
                raise SimulationError(
                    f"{self.name}: control-only cycle (jump loop with no "
                    f"compute instruction)"
                )

    def commit(self) -> None:
        """Retire the pending instruction returned by next_instruction."""
        if self._pending is None:
            raise SimulationError(f"{self.name}: commit with nothing pending")
        self._pending = None
        self.pc += 1
        self.issued += 1
        self.zorm.note_issue()

    @property
    def active_mask(self) -> int:
        """Current tile-enable mask."""
        return self.mask
