"""Data Orchestration Unit (paper Section 2.3, Figures 3 and 4).

The DOU is a decoupled communication controller: a state machine of up
to 128 states whose outputs drive the bus segment switches (SEG
fields) and the tile communication buffers (Buffer fields).  Each
state names one of four 32-bit down-counters (CNTR field): when the
counter is zero the machine resets it and follows NXTSTATE0, otherwise
it decrements and follows NXTSTATE1 - giving four nested zero-overhead
communication loops.

The DOU runs at the bus (maximum) frequency and provides
register-to-register transfers with zero instruction overhead in the
tiles: producers SEND into their write buffer, the DOU moves words at
statically scheduled cycles, consumers RECV from their read buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError

MAX_STATES = 128
MAX_COUNTERS = 4


@dataclass(frozen=True)
class DouState:
    """One DOU state (one row of Figure 3).

    Attributes
    ----------
    closed:
        (split, boundary) segment switches closed while in this state.
    drives:
        (position, split) pairs whose write buffer drives the split.
    captures:
        (position, split) pairs whose read buffer latches the split.
    counter:
        Down-counter index tested in this state, or ``None`` for an
        unconditional transition via ``next_otherwise``.
    next_if_zero / next_otherwise:
        NXTSTATE0 / NXTSTATE1 of Figure 3.
    """

    closed: frozenset = frozenset()
    drives: tuple = ()
    captures: tuple = ()
    counter: int | None = None
    next_if_zero: int = 0
    next_otherwise: int = 0


@dataclass(frozen=True)
class DouProgram:
    """A full DOU configuration: states plus counter initial values."""

    states: tuple
    counter_initial: tuple = ()
    name: str = "dou"

    def __post_init__(self) -> None:
        if not self.states:
            raise ConfigurationError(f"{self.name}: empty DOU program")
        if len(self.states) > MAX_STATES:
            raise ConfigurationError(
                f"{self.name}: {len(self.states)} states exceed the "
                f"{MAX_STATES}-state DOU"
            )
        if len(self.counter_initial) > MAX_COUNTERS:
            raise ConfigurationError(
                f"{self.name}: more than {MAX_COUNTERS} counters"
            )
        for index, state in enumerate(self.states):
            for nxt in (state.next_if_zero, state.next_otherwise):
                if not 0 <= nxt < len(self.states):
                    raise ConfigurationError(
                        f"{self.name}: state {index} links to missing "
                        f"state {nxt}"
                    )
            if state.counter is not None:
                if not 0 <= state.counter < len(self.counter_initial):
                    raise ConfigurationError(
                        f"{self.name}: state {index} tests missing "
                        f"counter {state.counter}"
                    )
            if state.drives and not state.captures:
                raise ConfigurationError(
                    f"{self.name}: state {index} drives the bus with no "
                    f"capture - the word could never retire"
                )

    @classmethod
    def idle(cls) -> "DouProgram":
        """A DOU that never moves data (compute-only columns)."""
        return cls(states=(DouState(),), name="idle")

    def is_inert(self) -> bool:
        """Whether no reachable state can ever move a word.

        Walks every state reachable from the reset state through
        either transition edge.  An inert program's execution is
        invisible to simulation statistics (no drives, no captures, so
        no retired words and no blocked cycles), which lets a compiled
        engine skip stepping it entirely.
        """
        seen = {0}
        frontier = [0]
        while frontier:
            state = self.states[frontier.pop()]
            if state.drives or state.captures:
                return False
            for nxt in (state.next_if_zero, state.next_otherwise):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return True


@dataclass(frozen=True)
class DouCycle:
    """One cycle of a linear communication schedule (builder input)."""

    closed: frozenset = frozenset()
    drives: tuple = ()
    captures: tuple = ()


def linear_schedule(
    cycles: list,
    repeat: int | None = None,
    name: str = "dou",
) -> DouProgram:
    """Compile a per-cycle transfer list into a DOU program.

    ``repeat=None`` loops the schedule forever (the steady-state form
    used for streaming kernels); ``repeat=k`` runs it k times using
    down-counter 0 and then parks in an idle state, mirroring the
    Figure 4 loop-encoding example.
    """
    if not cycles:
        raise ConfigurationError("linear_schedule needs at least one cycle")
    states = []
    last = len(cycles) - 1
    for index, cycle in enumerate(cycles):
        if index < last:
            states.append(DouState(
                closed=cycle.closed, drives=tuple(cycle.drives),
                captures=tuple(cycle.captures),
                next_otherwise=index + 1,
            ))
            continue
        if repeat is None:
            states.append(DouState(
                closed=cycle.closed, drives=tuple(cycle.drives),
                captures=tuple(cycle.captures),
                next_otherwise=0,
            ))
        else:
            idle_index = len(cycles)
            states.append(DouState(
                closed=cycle.closed, drives=tuple(cycle.drives),
                captures=tuple(cycle.captures),
                counter=0, next_if_zero=idle_index, next_otherwise=0,
            ))
    counters: tuple = ()
    if repeat is not None:
        if repeat < 1:
            raise ConfigurationError("repeat must be at least 1")
        states.append(DouState(next_otherwise=len(cycles)))  # idle park
        counters = (repeat - 1,)
    return DouProgram(states=tuple(states), counter_initial=counters,
                      name=name)


class Dou:
    """Executes a :class:`DouProgram` against a bus and buffer ports.

    ``write_ports``/``read_ports`` map a bus position to the
    :class:`~repro.arch.buffers.CommBuffer` that drives or captures at
    that position (tiles 0..3 plus the column's horizontal port).

    ``strict`` mode treats an empty source or full destination as a
    static-scheduling bug and raises; permissive mode retries the
    transfer on a later cycle (a drive only pops when at least one
    capture lands), which lets self-synchronizing streaming schedules
    tolerate start-up skew between clock domains.
    """

    def __init__(
        self,
        program: DouProgram,
        bus,
        write_ports: dict,
        read_ports: dict,
        strict: bool = True,
    ) -> None:
        self.program = program
        self.bus = bus
        self.write_ports = write_ports
        self.read_ports = read_ports
        self.strict = strict
        self.state_index = 0
        self.counters = list(program.counter_initial)
        self.words_moved = 0     # successful captures (broadcast = N)
        self.words_retired = 0   # retired drives (broadcast = 1)
        self.span_words = 0.0    # sum of per-retire bus-span fractions
        self.cycles = 0
        self.blocked_cycles = 0

    @property
    def state(self) -> DouState:
        """The current state."""
        return self.program.states[self.state_index]

    def fast_forward(self, n_cycles: int) -> None:
        """Account ``n_cycles`` skipped cycles of an inert program.

        Only valid when :meth:`DouProgram.is_inert` holds: no reachable
        state moves a word, so skipping leaves every statistic except
        the cycle count untouched (the state pointer is deliberately
        not advanced - it can never reach a transferring state).
        """
        if not self.program.is_inert():
            raise SimulationError(
                f"{self.program.name}: fast_forward on a DOU that "
                f"moves data"
            )
        self.cycles += n_cycles

    def _advance(self) -> None:
        state = self.state
        if state.counter is None:
            self.state_index = state.next_otherwise
            return
        if self.counters[state.counter] == 0:
            self.counters[state.counter] = (
                self.program.counter_initial[state.counter]
            )
            self.state_index = state.next_if_zero
        else:
            self.counters[state.counter] -= 1
            self.state_index = state.next_otherwise

    def step(self) -> int:
        """Run one bus cycle; returns the number of words delivered."""
        self.cycles += 1
        state = self.state
        self.bus.configure(state.closed)

        active_drives = []
        for position, split in state.drives:
            buffer = self.write_ports.get(position)
            if buffer is None:
                raise SimulationError(
                    f"{self.program.name}: no write port at {position}"
                )
            if buffer.is_empty:
                if self.strict:
                    raise SimulationError(
                        f"{self.program.name}: schedule underflow - "
                        f"drive from empty buffer at position {position}"
                    )
                continue
            active_drives.append((position, split, buffer.peek()))

        results = self.bus.resolve(
            [(p, s, v) for p, s, v in active_drives],
            list(state.captures),
        )

        delivered_by_segment: dict = {}
        moved = 0
        for (position, split), value in results.items():
            if value is None:
                if self.strict:
                    raise SimulationError(
                        f"{self.program.name}: capture from undriven "
                        f"segment at position {position}, split {split}"
                    )
                continue
            buffer = self.read_ports.get(position)
            if buffer is None:
                raise SimulationError(
                    f"{self.program.name}: no read port at {position}"
                )
            if buffer.is_full:
                if self.strict:
                    raise SimulationError(
                        f"{self.program.name}: schedule overflow - "
                        f"capture into full buffer at position {position}"
                    )
                continue
            buffer.push(value)
            moved += 1
            segment = self.bus.segment_of(split, position)
            delivered_by_segment.setdefault((split, segment), [])
            delivered_by_segment[(split, segment)].append(position)

        # A drive retires only once at least one capture consumed it.
        for position, split, _ in active_drives:
            segment = self.bus.segment_of(split, position)
            destinations = delivered_by_segment.get((split, segment), ())
            if destinations:
                self.write_ports[position].pop()
                self.words_retired += 1
                # The transfer charges the wire out to its furthest
                # capture; recorded so measured CommProfile span
                # fractions reflect actual segment usage (Sec 2.3).
                self.span_words += max(
                    self.bus.span_of_transfer(split, position, dst)
                    for dst in destinations
                )
            elif self.strict and state.captures:
                raise SimulationError(
                    f"{self.program.name}: driven word at position "
                    f"{position} had no successful capture"
                )

        if state.drives and moved == 0:
            self.blocked_cycles += 1
        self.words_moved += moved
        self._advance()
        return moved
