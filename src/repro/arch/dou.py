"""Data Orchestration Unit (paper Section 2.3, Figures 3 and 4).

The DOU is a decoupled communication controller: a state machine of up
to 128 states whose outputs drive the bus segment switches (SEG
fields) and the tile communication buffers (Buffer fields).  Each
state names one of four 32-bit down-counters (CNTR field): when the
counter is zero the machine resets it and follows NXTSTATE0, otherwise
it decrements and follows NXTSTATE1 - giving four nested zero-overhead
communication loops.

The DOU runs at the bus (maximum) frequency and provides
register-to-register transfers with zero instruction overhead in the
tiles: producers SEND into their write buffer, the DOU moves words at
statically scheduled cycles, consumers RECV from their read buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ConfigurationError, SimulationError
from repro.arch.dou_exec import (
    compile_lap_plans,
    compile_orbits,
    compile_state_plans,
)

MAX_STATES = 128
MAX_COUNTERS = 4


@dataclass(frozen=True)
class DouState:
    """One DOU state (one row of Figure 3).

    Attributes
    ----------
    closed:
        (split, boundary) segment switches closed while in this state.
    drives:
        (position, split) pairs whose write buffer drives the split.
    captures:
        (position, split) pairs whose read buffer latches the split.
    counter:
        Down-counter index tested in this state, or ``None`` for an
        unconditional transition via ``next_otherwise``.
    next_if_zero / next_otherwise:
        NXTSTATE0 / NXTSTATE1 of Figure 3.
    """

    closed: frozenset = frozenset()
    drives: tuple = ()
    captures: tuple = ()
    counter: int | None = None
    next_if_zero: int = 0
    next_otherwise: int = 0


@dataclass(frozen=True)
class DouProgram:
    """A full DOU configuration: states plus counter initial values."""

    states: tuple
    counter_initial: tuple = ()
    name: str = "dou"

    def __post_init__(self) -> None:
        if not self.states:
            raise ConfigurationError(f"{self.name}: empty DOU program")
        if len(self.states) > MAX_STATES:
            raise ConfigurationError(
                f"{self.name}: {len(self.states)} states exceed the "
                f"{MAX_STATES}-state DOU"
            )
        if len(self.counter_initial) > MAX_COUNTERS:
            raise ConfigurationError(
                f"{self.name}: more than {MAX_COUNTERS} counters"
            )
        for index, state in enumerate(self.states):
            for nxt in (state.next_if_zero, state.next_otherwise):
                if not 0 <= nxt < len(self.states):
                    raise ConfigurationError(
                        f"{self.name}: state {index} links to missing "
                        f"state {nxt}"
                    )
            if state.counter is not None:
                if not 0 <= state.counter < len(self.counter_initial):
                    raise ConfigurationError(
                        f"{self.name}: state {index} tests missing "
                        f"counter {state.counter}"
                    )
            if state.drives and not state.captures:
                raise ConfigurationError(
                    f"{self.name}: state {index} drives the bus with no "
                    f"capture - the word could never retire"
                )

    @classmethod
    def idle(cls) -> "DouProgram":
        """A DOU that never moves data (compute-only columns)."""
        return cls(states=(DouState(),), name="idle")

    def __getstate__(self) -> dict:
        """Pickle only the declared fields (not cached properties).

        Keeps the byte representation - and therefore the content
        hashes of ``repro.sim.batch`` - independent of whether the
        quiescence analysis has run on this instance yet.
        """
        state = self.__dict__
        return {
            name: state[name]
            for name in ("states", "counter_initial", "name")
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @cached_property
    def quiescent_states(self) -> frozenset:
        """State indexes whose forward closure can never move a word.

        A state is *quiescent* when it neither drives nor captures and
        every state it can actually reach is quiescent too (a state
        testing no counter only ever follows ``next_otherwise``, so
        its ``next_if_zero`` edge does not count).  The quiescent set
        is closed under execution by construction: once a DOU's state
        pointer enters it, no future cycle can move a word, block, or
        touch the bus - which is what lets an engine demote the
        machine to arithmetic cycle accounting with re-promotion
        impossible.  Cached on the (frozen) program.
        """
        quiescent = [
            not (state.drives or state.captures)
            for state in self.states
        ]
        changed = True
        while changed:
            changed = False
            for index, state in enumerate(self.states):
                if not quiescent[index]:
                    continue
                successors = (
                    (state.next_otherwise,) if state.counter is None
                    else (state.next_if_zero, state.next_otherwise)
                )
                if not all(quiescent[nxt] for nxt in successors):
                    quiescent[index] = False
                    changed = True
        return frozenset(
            index for index, quiet in enumerate(quiescent) if quiet
        )

    def is_inert(self) -> bool:
        """Whether no reachable state can ever move a word.

        Equivalent to the reset state being quiescent: an inert
        program's execution is invisible to simulation statistics (no
        drives, no captures, so no retired words and no blocked
        cycles), which lets a compiled engine skip stepping it
        entirely.
        """
        return 0 in self.quiescent_states


@dataclass(frozen=True)
class DouCycle:
    """One cycle of a linear communication schedule (builder input)."""

    closed: frozenset = frozenset()
    drives: tuple = ()
    captures: tuple = ()


def linear_schedule(
    cycles: list,
    repeat: int | None = None,
    name: str = "dou",
) -> DouProgram:
    """Compile a per-cycle transfer list into a DOU program.

    ``repeat=None`` loops the schedule forever (the steady-state form
    used for streaming kernels); ``repeat=k`` runs it k times using
    down-counter 0 and then parks in an idle state, mirroring the
    Figure 4 loop-encoding example.
    """
    if not cycles:
        raise ConfigurationError("linear_schedule needs at least one cycle")
    states = []
    last = len(cycles) - 1
    for index, cycle in enumerate(cycles):
        if index < last:
            states.append(DouState(
                closed=cycle.closed, drives=tuple(cycle.drives),
                captures=tuple(cycle.captures),
                next_otherwise=index + 1,
            ))
            continue
        if repeat is None:
            states.append(DouState(
                closed=cycle.closed, drives=tuple(cycle.drives),
                captures=tuple(cycle.captures),
                next_otherwise=0,
            ))
        else:
            idle_index = len(cycles)
            states.append(DouState(
                closed=cycle.closed, drives=tuple(cycle.drives),
                captures=tuple(cycle.captures),
                counter=0, next_if_zero=idle_index, next_otherwise=0,
            ))
    counters: tuple = ()
    if repeat is not None:
        if repeat < 1:
            raise ConfigurationError("repeat must be at least 1")
        states.append(DouState(next_otherwise=len(cycles)))  # idle park
        counters = (repeat - 1,)
    return DouProgram(states=tuple(states), counter_initial=counters,
                      name=name)


class Dou:
    """Executes a :class:`DouProgram` against a bus and buffer ports.

    ``write_ports``/``read_ports`` map a bus position to the
    :class:`~repro.arch.buffers.CommBuffer` that drives or captures at
    that position (tiles 0..3 plus the column's horizontal port).

    ``strict`` mode treats an empty source or full destination as a
    static-scheduling bug and raises; permissive mode retries the
    transfer on a later cycle (a drive only pops when at least one
    capture lands), which lets self-synchronizing streaming schedules
    tolerate start-up skew between clock domains.
    """

    def __init__(
        self,
        program: DouProgram,
        bus,
        write_ports: dict,
        read_ports: dict,
        strict: bool = True,
    ) -> None:
        self.program = program
        self.bus = bus
        self.write_ports = write_ports
        self.read_ports = read_ports
        self.strict = strict
        self.state_index = 0
        self.counters = list(program.counter_initial)
        # Bind-time compilation (repro.arch.dou_exec): one plan per
        # state, None where only the generic interpreter is correct.
        self._plans = compile_state_plans(
            program, bus, write_ports, read_ports, strict
        )
        # Closed unconditional-transition orbits per state: the
        # no-progress batching structure (repro.arch.dou_exec).
        self._orbits = compile_orbits(program, self._plans)
        # Whole-lap transfer vectors per state (None = step singly):
        # the live-orbit batching structure (repro.arch.dou_exec).
        self._lap_plans = compile_lap_plans(self._plans, self._orbits)
        self.words_moved = 0     # successful captures (broadcast = N)
        self.words_retired = 0   # retired drives (broadcast = 1)
        self.span_words = 0.0    # sum of per-retire bus-span fractions
        self.cycles = 0
        self.blocked_cycles = 0

    @property
    def state(self) -> DouState:
        """The current state."""
        return self.program.states[self.state_index]

    def fast_forward(self, n_cycles: int) -> None:
        """Account ``n_cycles`` skipped cycles of a quiescent machine.

        Only valid while the current state lies in
        :attr:`DouProgram.quiescent_states` - inert programs always
        qualify, and a live program qualifies once it has parked in a
        closed orbit of non-transferring states (e.g. the idle park of
        ``linear_schedule(repeat=k)``).  Skipping then leaves every
        statistic except the cycle count untouched; the state pointer
        and counters are deliberately frozen - nothing observable can
        depend on them again, since the orbit is closed.
        """
        if self.state_index not in self.program.quiescent_states:
            raise SimulationError(
                f"{self.program.name}: fast_forward in state "
                f"{self.state_index}, which can still move data"
            )
        self.cycles += n_cycles

    def is_quiescent(self) -> bool:
        """Whether the machine has entered a closed transfer-free orbit.

        Monotonic: once true it stays true forever (the quiescent set
        is closed under execution), so an engine may demote this DOU
        to :meth:`fast_forward` accounting without ever re-checking.
        """
        return self.state_index in self.program.quiescent_states

    def starved_self_loop(self) -> bool:
        """Whether the current cycle is a pure repeatable stall.

        True when the state is a permissive self-loop whose every
        source buffer is empty: stepping would only increment
        ``cycles`` and ``blocked_cycles``, and would leave the state
        pointer, the counters, and every buffer untouched - so as long
        as no external agent pushes a word, the next cycle is
        identical and a run of them may be settled arithmetically via
        :meth:`fast_stall`.
        """
        plan = self._plans[self.state_index]
        if plan is None or not plan.stall_batchable:
            return False
        for words in plan.sources:
            if words:
                return False
        return True

    def fast_stall(self, n_cycles: int) -> None:
        """Account ``n_cycles`` consecutive starved self-loop cycles.

        Callers must hold :meth:`starved_self_loop` and guarantee no
        source buffer is pushed during the batched span.
        """
        self.cycles += n_cycles
        self.blocked_cycles += n_cycles

    def stall_orbit(self):
        """The per-lap effects of the current no-progress orbit, or None.

        Classifies every state of the closed unconditional orbit the
        machine currently sits in (compiled at bind time; None when
        the current state is not on one) under *frozen* buffer
        occupancy: a state makes no progress when every drive whose
        source holds a word feeds only full destinations - covering
        full starvation (no active drives), full backpressure (every
        capture blocked), and transfer-free idle states alike.  The
        moment any capture could land, the orbit is live and None is
        returned.

        The result is a list of ``(stalls, n_active)`` per orbit
        position - ``stalls`` flags a ``blocked_cycles`` increment
        (the state drives the bus), ``n_active`` counts drives with a
        word (each blocked cycle moves them onto the wire, charging
        the bus traffic counters even though nothing retires, exactly
        like the interpreter).  Valid for any span during which no
        external agent touches the buffers; apply it with
        :meth:`fast_stall_orbit`.
        """
        orbit = self._orbits[self.state_index]
        if orbit is None:
            return None
        plans = self._plans
        effects = []
        for index in orbit:
            plan = plans[index]
            active = 0
            for src_words, destinations in plan.blocks:
                if not src_words:
                    continue
                for dest_words, capacity in destinations:
                    if len(dest_words) < capacity:
                        return None  # a capture can land: progress
                active += 1
            effects.append((1 if plan.n_drives else 0, active))
        return effects

    def fast_stall_orbit(self, effects, n_cycles: int) -> None:
        """Account ``n_cycles`` of the no-progress orbit arithmetically.

        ``effects`` must come from :meth:`stall_orbit` with the state
        pointer unmoved since, and the caller must guarantee no buffer
        is pushed or popped during the batched span.  Cycle counts and
        bus traffic are charged per orbit position from lap counts;
        the state pointer lands where ``n_cycles`` steps of the orbit
        would leave it.  Counters are untouched - orbit states test
        none by construction.
        """
        self.cycles += n_cycles
        length = len(effects)
        if length == 1:
            stalls, active = effects[0]
            if stalls:
                self.blocked_cycles += n_cycles
            if active:
                bus = self.bus
                bus.words_moved += active * n_cycles
                bus.cycles_with_traffic += n_cycles
            return
        laps, rem = divmod(n_cycles, length)
        stalled = 0
        words = 0
        traffic = 0
        for position, (stalls, active) in enumerate(effects):
            visits = laps + (1 if position < rem else 0)
            if not visits:
                continue
            if stalls:
                stalled += visits
            if active:
                words += active * visits
                traffic += visits
        self.blocked_cycles += stalled
        if words:
            bus = self.bus
            bus.words_moved += words
            bus.cycles_with_traffic += traffic
        orbit = self._orbits[self.state_index]
        self.state_index = orbit[rem]

    def lap_plan(self, state_index: int):
        """The whole-lap transfer vector starting at ``state_index``.

        ``None`` when the state sits on no closed full-transfer orbit
        (see :func:`~repro.arch.dou_exec.compile_lap_plans`); a plan is
        applied with :meth:`apply_laps`.
        """
        return self._lap_plans[state_index]

    def apply_laps(self, plan, k: int) -> bool:
        """Settle ``k`` whole orbit laps in bulk; False = guards failed.

        Exactly equivalent to ``k * plan.length`` consecutive
        :meth:`step` calls *when every one of those steps would take
        the full-transfer fast path* - which the aggregated guards
        (every source holds ``>= k`` words, every destination has room
        for ``k`` more) certify, because the orbit's states pop each
        source and push each destination at most once per lap.  When a
        guard fails nothing is applied and the caller must fall back
        to single stepping; the interpreter then handles whatever the
        truth is (partial starvation, backpressure, strict errors).

        The caller must hold ``state_index`` at the state the plan was
        compiled for; ``k`` full laps return the pointer there, so it
        is left untouched.  Span fractions accumulate one addition per
        retire in interpreter order - float-exact against the
        reference.
        """
        for words in plan.sources:
            if len(words) < k:
                return False
        for words, capacity in plan.rooms:
            if len(words) + k > capacity:
                return False
        plan.apply(k)
        ticks = plan.length * k
        self.cycles += ticks
        self.words_moved += plan.n_captures * k
        self.words_retired += plan.n_drives * k
        span = self.span_words
        spans = plan.spans
        for _ in range(k):
            for value in spans:
                span += value
        self.span_words = span
        bus = self.bus
        bus.words_moved += plan.n_drives * k
        bus.cycles_with_traffic += ticks
        return True

    def _advance(self) -> None:
        state = self.state
        if state.counter is None:
            self.state_index = state.next_otherwise
            return
        if self.counters[state.counter] == 0:
            self.counters[state.counter] = (
                self.program.counter_initial[state.counter]
            )
            self.state_index = state.next_if_zero
        else:
            self.counters[state.counter] -= 1
            self.state_index = state.next_otherwise

    def step(self) -> int:
        """Run one bus cycle; returns the number of words delivered.

        Dispatches to the compiled per-state plan when one exists and
        its occupancy preconditions hold (the steady state of a static
        schedule); anything else - blocked transfers, partial
        starvation, strict-mode errors, statically ineligible states -
        falls through to the generic interpreter, keeping every
        counter byte-for-byte identical to the uncompiled machine.
        """
        plan = self._plans[self.state_index]
        if plan is None:
            return self._step_generic()
        for words in plan.sources:
            if not words:
                if not plan.starve_ok:
                    return self._step_generic()
                for other in plan.sources:
                    if other:  # partial starvation: interpreter
                        return self._step_generic()
                # Every source empty: one pure stall cycle.
                self.cycles += 1
                self.blocked_cycles += 1
                counter = plan.counter
                if counter is None:
                    self.state_index = plan.next_otherwise
                else:
                    self._advance_compiled(plan, counter)
                return 0
        for words, room in plan.room_checks:
            if len(words) > room:
                return self._step_generic()
        # Steady state: the full transfer, as a tuple walk.  Captures
        # push before drives pop, mirroring the interpreter's order.
        self.cycles += 1
        for dest_words, dest_buffer, src_words in plan.captures:
            dest_words.append(src_words[0])
            dest_buffer.total_pushed += 1
        for src_words, src_buffer in plan.drains:
            src_words.popleft()
            src_buffer.total_popped += 1
        n_drives = plan.n_drives
        if n_drives:
            self.words_retired += n_drives
            # One addition per retired drive, in drive order, exactly
            # like the interpreter - float accumulation is order
            # sensitive and the stats must stay bit-identical.
            span = self.span_words
            for value in plan.spans:
                span += value
            self.span_words = span
            bus = self.bus
            bus.words_moved += n_drives
            bus.cycles_with_traffic += 1
        moved = plan.n_captures
        self.words_moved += moved
        counter = plan.counter
        if counter is None:
            self.state_index = plan.next_otherwise
        else:
            self._advance_compiled(plan, counter)
        return moved

    def _advance_compiled(self, plan, counter: int) -> None:
        """Counter-testing transition of the compiled fast path."""
        counters = self.counters
        if counters[counter] == 0:
            counters[counter] = plan.counter_reset
            self.state_index = plan.next_if_zero
        else:
            counters[counter] -= 1
            self.state_index = plan.next_otherwise

    def _step_generic(self) -> int:
        """The reference interpreter for one bus cycle."""
        self.cycles += 1
        state = self.state
        self.bus.configure(state.closed)

        active_drives = []
        for position, split in state.drives:
            buffer = self.write_ports.get(position)
            if buffer is None:
                raise SimulationError(
                    f"{self.program.name}: no write port at {position}"
                )
            if buffer.is_empty:
                if self.strict:
                    raise SimulationError(
                        f"{self.program.name}: schedule underflow - "
                        f"drive from empty buffer at position {position}"
                    )
                continue
            active_drives.append((position, split, buffer.peek()))

        results = self.bus.resolve(
            [(p, s, v) for p, s, v in active_drives],
            list(state.captures),
        )

        delivered_by_segment: dict = {}
        moved = 0
        for (position, split), value in results.items():
            if value is None:
                if self.strict:
                    raise SimulationError(
                        f"{self.program.name}: capture from undriven "
                        f"segment at position {position}, split {split}"
                    )
                continue
            buffer = self.read_ports.get(position)
            if buffer is None:
                raise SimulationError(
                    f"{self.program.name}: no read port at {position}"
                )
            if buffer.is_full:
                if self.strict:
                    raise SimulationError(
                        f"{self.program.name}: schedule overflow - "
                        f"capture into full buffer at position {position}"
                    )
                continue
            buffer.push(value)
            moved += 1
            segment = self.bus.segment_of(split, position)
            delivered_by_segment.setdefault((split, segment), [])
            delivered_by_segment[(split, segment)].append(position)

        # A drive retires only once at least one capture consumed it.
        for position, split, _ in active_drives:
            segment = self.bus.segment_of(split, position)
            destinations = delivered_by_segment.get((split, segment), ())
            if destinations:
                self.write_ports[position].pop()
                self.words_retired += 1
                # The transfer charges the wire out to its furthest
                # capture; recorded so measured CommProfile span
                # fractions reflect actual segment usage (Sec 2.3).
                self.span_words += max(
                    self.bus.span_of_transfer(split, position, dst)
                    for dst in destinations
                )
            elif self.strict and state.captures:
                raise SimulationError(
                    f"{self.program.name}: driven word at position "
                    f"{position} had no successful capture"
                )

        if state.drives and moved == 0:
            self.blocked_cycles += 1
        self.words_moved += moved
        self._advance()
        return moved
