"""Bind-time compilation of DOU states into transfer plans.

The DOU's per-cycle work (Section 2.3) is statically scheduled: a
state's switch settings, and therefore its segment topology, its
source/destination buffers, and the bus-span fraction every retired
word charges, are all fixed the moment a :class:`~repro.arch.dou.Dou`
is bound to a bus and its buffer ports.  Only buffer *occupancy* is
dynamic.  This module precomputes everything occupancy-independent
once per state, so the steady-state fast path of ``Dou.step`` is a
tuple walk - no dict lookups, no list construction, no
``bus.configure``/``segment_of``/``span_of_transfer`` recomputation.

A state compiles to a :class:`StatePlan` only when its static shape
guarantees the generic interpreter would take the unexceptional path
whenever the plan's occupancy preconditions hold:

* every ``closed`` switch is in range for the bus;
* every drive and capture position has a bound port;
* no two drives share one electrical segment (the structural hazard
  of Section 4.1 step 5 would raise);
* every capture's segment is driven and every drive is captured at
  least once (otherwise strict mode raises / permissive mode takes
  the partial-delivery path);
* no write buffer is popped twice in one cycle.

States failing any test keep ``None`` and always run the generic
interpreter, which preserves their error behavior exactly.  Eligible
states still fall back to the interpreter whenever a precondition
fails at run time (some-but-not-all sources empty, destination
nearly full, strict-mode underflow/overflow), so blocked and error
cases stay byte-for-byte identical to the uncompiled machine.
"""

from __future__ import annotations

from itertools import islice

__all__ = [
    "StatePlan", "LapPlan", "compile_state_plans", "compile_orbits",
    "compile_lap_plans",
]


class StatePlan:
    """The occupancy-independent residue of one :class:`DouState`.

    Buffer references are bound down to the backing deques so the hot
    path touches no properties: ``sources`` gates the fast path (every
    deque non-empty), ``room_checks`` guards capacity (aggregated per
    destination buffer, so double captures into one buffer are
    counted), ``captures``/``drains`` perform the word movement in the
    generic interpreter's push-then-pop order.  ``blocks`` groups each
    drive's source deque with the (deque, capacity) of every capture it
    feeds - the structure the no-progress orbit check walks to decide
    whether any word could move this cycle.
    """

    __slots__ = (
        "sources", "drains", "room_checks", "captures",
        "n_drives", "n_captures", "spans", "blocks", "starve_ok",
        "stall_batchable", "counter", "counter_reset",
        "next_if_zero", "next_otherwise",
    )

    def __init__(
        self, sources, drains, room_checks, captures, n_drives,
        n_captures, spans, blocks, starve_ok, stall_batchable,
        counter, counter_reset, next_if_zero, next_otherwise,
    ) -> None:
        self.sources = sources
        self.drains = drains
        self.room_checks = room_checks
        self.captures = captures
        self.n_drives = n_drives
        self.n_captures = n_captures
        self.spans = spans
        self.blocks = blocks
        self.starve_ok = starve_ok
        self.stall_batchable = stall_batchable
        self.counter = counter
        self.counter_reset = counter_reset
        self.next_if_zero = next_if_zero
        self.next_otherwise = next_otherwise


def _segment_of(closed: frozenset, split: int, position: int) -> int:
    """``SegmentedBus.segment_of`` replayed on a static switch set."""
    start = position
    while start > 0 and (split, start - 1) in closed:
        start -= 1
    return start


def _compile_state(
    index: int, state, program, bus, write_ports, read_ports,
    strict: bool,
):
    for split, boundary in state.closed:
        if not 0 <= split < bus.n_splits:
            return None
        if not 0 <= boundary < bus.n_boundaries:
            return None
    for position, _ in tuple(state.drives) + tuple(state.captures):
        if not 0 <= position < bus.n_positions:
            return None

    closed = state.closed
    # (split, segment) -> drive index; the fast path requires the
    # mapping to be one-to-one both ways.
    drive_of_segment: dict = {}
    source_buffers = []
    seen_sources = set()
    for position, split in state.drives:
        buffer = write_ports.get(position)
        if buffer is None:
            return None
        if id(buffer) in seen_sources:
            # Two drives popping one buffer in a single cycle need the
            # interpreter's sequential underflow semantics.
            return None
        seen_sources.add(id(buffer))
        key = (split, _segment_of(closed, split, position))
        if key in drive_of_segment:
            return None  # structural hazard: interpreter raises
        drive_of_segment[key] = len(source_buffers)
        source_buffers.append((position, buffer))

    captures = []
    room_needed: dict = {}
    drive_destinations: dict = {}
    for position, split in state.captures:
        buffer = read_ports.get(position)
        if buffer is None:
            return None
        key = (split, _segment_of(closed, split, position))
        drive_index = drive_of_segment.get(key)
        if drive_index is None:
            return None  # undriven capture: strict raises, permissive skips
        src_position, src_buffer = source_buffers[drive_index]
        captures.append((buffer._words, buffer, src_buffer._words))
        room_needed[id(buffer)] = (
            buffer, room_needed.get(id(buffer), (buffer, 0))[1] + 1
        )
        drive_destinations.setdefault(drive_index, []).append(position)

    if len(drive_destinations) != len(source_buffers):
        return None  # some drive never retires: interpreter's business

    # Per-drive span values in drive order: the fast path accumulates
    # them with the same one-addition-per-retire sequence the
    # interpreter uses, so the float result is bit-identical.
    spans = tuple(
        (
            max(
                abs(dst - source_buffers[drive_index][0])
                for dst in drive_destinations[drive_index]
            ) + 1
        ) / bus.n_positions
        for drive_index in range(len(source_buffers))
    )

    starve_ok = (not strict) and bool(state.drives)
    return StatePlan(
        sources=tuple(b._words for _, b in source_buffers),
        drains=tuple((b._words, b) for _, b in source_buffers),
        room_checks=tuple(
            (buffer._words, buffer.capacity - count)
            for buffer, count in room_needed.values()
        ),
        captures=tuple(captures),
        n_drives=len(source_buffers),
        n_captures=len(captures),
        spans=spans,
        blocks=tuple(
            (
                source_buffers[drive_index][1]._words,
                tuple(
                    (read_ports[dst]._words, read_ports[dst].capacity)
                    for dst in drive_destinations[drive_index]
                ),
            )
            for drive_index in range(len(source_buffers))
        ),
        starve_ok=starve_ok,
        # A starved permissive self-loop repeats one pure stall cycle:
        # engines may batch those arithmetically (state, counters, and
        # buffers provably cannot change until an external push).
        stall_batchable=(
            starve_ok
            and state.counter is None
            and state.next_otherwise == index
        ),
        counter=state.counter,
        counter_reset=(
            program.counter_initial[state.counter]
            if state.counter is not None else 0
        ),
        next_if_zero=state.next_if_zero,
        next_otherwise=state.next_otherwise,
    )


def compile_state_plans(
    program, bus, write_ports, read_ports, strict: bool
) -> tuple:
    """Per-state plans for one bound DOU (``None`` = interpret)."""
    return tuple(
        _compile_state(
            index, state, program, bus, write_ports, read_ports,
            strict,
        )
        for index, state in enumerate(program.states)
    )


def compile_orbits(program, plans) -> tuple:
    """Per-state closed orbit of unconditional transitions, or None.

    ``orbits[s]`` is the tuple of state indexes the machine visits
    starting from ``s`` along ``next_otherwise`` links until it
    returns to ``s`` - provided every state on the walk is *orbit
    eligible*: it has a compiled plan, tests no counter (so the walk
    is the machine's only possible trajectory and visits no counter
    state), and either moves no words at all or is permissive about
    starvation and backpressure.  Inside such an orbit a cycle where
    no capture can land (every driving source empty, or every fed
    destination full) provably repeats: the state pointer walks the
    orbit, no buffer changes, and only ``cycles``/``blocked_cycles``
    and the bus traffic counters advance - which is what lets an
    engine settle a whole span of them arithmetically
    (:meth:`~repro.arch.dou.Dou.fast_stall_orbit`).  The single-state
    permissive self-loop of ``stall_batchable`` is the length-1 case.
    """
    states = program.states
    eligible = []
    for index, state in enumerate(states):
        plan = plans[index]
        eligible.append(
            plan is not None
            and state.counter is None
            and (plan.n_drives == 0 or plan.starve_ok)
        )
    orbits = []
    for index in range(len(states)):
        if not eligible[index]:
            orbits.append(None)
            continue
        walk = [index]
        cursor = states[index].next_otherwise
        closed = True
        while cursor != index:
            if not eligible[cursor] or len(walk) >= len(states):
                closed = False
                break
            walk.append(cursor)
            cursor = states[cursor].next_otherwise
        orbits.append(tuple(walk) if closed else None)
    return tuple(orbits)


class LapPlan:
    """One whole orbit lap compiled into a bulk transfer vector.

    Where :class:`StatePlan` compiles one state's cycle, a lap plan
    compiles one full trip around a closed unconditional orbit in
    which *every* state performs its complete transfer.  Under the
    aggregated guards (every source holds at least ``k`` words, every
    destination has room for ``k`` more), ``k`` consecutive laps move
    exactly the words the interpreter would move tick by tick - the
    per-buffer word *sequences* are identical, not just the counts -
    so an engine may apply whole laps as deque bulk operations
    (:meth:`~repro.arch.dou.Dou.apply_laps`) instead of stepping
    ``k * len(orbit)`` dense ticks.

    Exactness needs structural restrictions, enforced at compile time
    (states whose orbit violates them simply keep ``lap_plan=None``
    and are stepped singly):

    * every orbit state transfers (``n_drives >= 1`` and every drive
      retires) - an idle state inside the orbit would make "full lap"
      occupancy-dependent;
    * each source buffer is popped by at most one orbit state and
      each destination pushed by at most one capture per lap, so a
      bulk ``extend`` of the source's first ``k`` words reproduces the
      interleaved per-tick push order exactly;
    * no buffer is both a source and a destination anywhere in the
      orbit (intra-lap feeding would change which words are eligible
      mid-lap).

    ``spans`` keeps the per-retire span values in interpreter (state,
    then drive) order: float accumulation is order sensitive, so
    :meth:`~repro.arch.dou.Dou.apply_laps` replays the additions one
    lap at a time rather than multiplying.
    """

    __slots__ = (
        "length", "captures", "drains", "sources", "rooms", "spans",
        "n_captures", "n_drives", "words_per_lap",
    )

    def __init__(
        self, length, captures, drains, sources, rooms, spans,
        n_captures, n_drives,
    ) -> None:
        self.length = length
        self.captures = captures
        self.drains = drains
        self.sources = sources
        self.rooms = rooms
        self.spans = spans
        self.n_captures = n_captures
        self.n_drives = n_drives
        #: bus words driven per lap (== retired drives: full transfer)
        self.words_per_lap = n_drives

    def apply(self, k: int) -> None:
        """Move ``k`` laps' words in bulk.  Guards must already hold."""
        for dest_words, dest_buffer, src_words in self.captures:
            dest_words.extend(islice(src_words, k))
            dest_buffer.total_pushed += k
        for src_words, src_buffer in self.drains:
            for _ in range(k):
                src_words.popleft()
            src_buffer.total_popped += k


def _compile_lap(plans, orbit):
    if orbit is None:
        return None
    captures = []
    drains = []
    sources = []
    rooms = []
    spans = []
    src_ids = set()
    dest_ids = set()
    for index in orbit:
        plan = plans[index]
        if plan.n_drives == 0 or plan.n_captures == 0:
            return None  # idle orbit state: no full-transfer lap
        pushes: dict = {}
        for dest_words, dest_buffer, src_words in plan.captures:
            key = id(dest_words)
            if key in dest_ids or key in pushes:
                return None  # one push per destination per lap
            pushes[key] = dest_buffer
            captures.append((dest_words, dest_buffer, src_words))
            rooms.append((dest_words, dest_buffer.capacity))
        dest_ids.update(pushes)
        for src_words, src_buffer in plan.drains:
            key = id(src_words)
            if key in src_ids:
                return None  # one pop per source per lap
            src_ids.add(key)
            drains.append((src_words, src_buffer))
            sources.append(src_words)
        spans.extend(plan.spans)
    if src_ids & dest_ids:
        return None  # a buffer fed by the orbit also feeds it
    return LapPlan(
        length=len(orbit),
        captures=tuple(captures),
        drains=tuple(drains),
        sources=tuple(sources),
        rooms=tuple(rooms),
        spans=tuple(spans),
        n_captures=len(captures),
        n_drives=len(drains),
    )


def compile_lap_plans(plans, orbits) -> tuple:
    """Per-state whole-lap transfer vectors (``None`` = step singly).

    ``lap_plans[s]`` batches laps of the orbit *starting at* ``s``;
    each member of a closed orbit gets its own rotation, so an engine
    may start lapping from whichever state the machine currently
    occupies.
    """
    return tuple(_compile_lap(plans, orbit) for orbit in orbits)
