"""Segmented bus model (paper Section 2.3, Figure 2).

A Synchroscalar bus is ``width`` bits grouped into separable 32-bit
splits.  Between each pair of adjacent positions sits a segment
controller per split; closing a run of switches fuses adjacent
segments into one electrical net.  With every switch closed the split
is a broadcast bus; with switches open, disjoint segments carry
independent transfers in the same cycle - the property that gives
Synchroscalar mesh-like local bandwidth (Section 2.3).
"""

from __future__ import annotations

from repro.errors import SimulationError


class SegmentedBus:
    """One bus run with ``n_positions`` taps and ``n_splits`` splits.

    Positions are numbered 0..n_positions-1; boundary ``b`` sits
    between positions ``b`` and ``b+1``.  Switch state is configured
    per cycle by a DOU before transfers resolve.
    """

    def __init__(self, name: str, n_positions: int, n_splits: int = 8) -> None:
        if n_positions < 2:
            raise ValueError("a bus needs at least two positions")
        if n_splits < 1:
            raise ValueError("a bus needs at least one split")
        self.name = name
        self.n_positions = n_positions
        self.n_splits = n_splits
        self.n_boundaries = n_positions - 1
        # closed[split][boundary] -> bool
        self._closed = [
            [False] * self.n_boundaries for _ in range(n_splits)
        ]
        self.words_moved = 0
        self.cycles_with_traffic = 0

    def configure(self, closed: frozenset) -> None:
        """Set switch state from a set of (split, boundary) pairs."""
        for split in range(self.n_splits):
            for boundary in range(self.n_boundaries):
                self._closed[split][boundary] = (split, boundary) in closed
        for split, boundary in closed:
            if not 0 <= split < self.n_splits:
                raise SimulationError(
                    f"{self.name}: split {split} out of range"
                )
            if not 0 <= boundary < self.n_boundaries:
                raise SimulationError(
                    f"{self.name}: boundary {boundary} out of range"
                )

    def is_closed(self, split: int, boundary: int) -> bool:
        """Whether one segment switch is currently closed."""
        return self._closed[split][boundary]

    def segment_of(self, split: int, position: int) -> int:
        """Identifier of the electrical segment at (split, position).

        Two positions share a segment iff every switch between them is
        closed; the identifier is the lowest position in the run.
        """
        if not 0 <= position < self.n_positions:
            raise SimulationError(
                f"{self.name}: position {position} out of range"
            )
        start = position
        while start > 0 and self._closed[split][start - 1]:
            start -= 1
        return start

    def connected(self, split: int, a: int, b: int) -> bool:
        """Whether positions a and b share a segment on ``split``."""
        return self.segment_of(split, a) == self.segment_of(split, b)

    def resolve(self, drives: list, captures: list) -> dict:
        """Propagate driven values and return captured words.

        ``drives`` is a list of ``(position, split, value)``;
        ``captures`` is a list of ``(position, split)``.  Returns a
        mapping from each capture to its value, or ``None`` when its
        segment is undriven (callers decide whether that is an error).
        Two drivers on one segment is always a structural hazard
        (Section 4.1, step 5) and raises.
        """
        segment_values: dict = {}
        for position, split, value in drives:
            key = (split, self.segment_of(split, position))
            if key in segment_values:
                raise SimulationError(
                    f"{self.name}: bus conflict on split {split} "
                    f"segment {key[1]} (two drivers in one cycle)"
                )
            segment_values[key] = value & 0xFFFFFFFF
        results: dict = {}
        for position, split in captures:
            key = (split, self.segment_of(split, position))
            results[(position, split)] = segment_values.get(key)
        if drives:
            self.words_moved += len(drives)
            self.cycles_with_traffic += 1
        return results

    def span_of_transfer(self, split: int, src: int, dst: int) -> float:
        """Fraction of the bus length a src->dst transfer charges.

        Used to derive :class:`repro.power.CommProfile` span fractions
        from simulated schedules: only the segments between source and
        destination (inclusive) switch.
        """
        if not self.connected(split, src, dst):
            raise SimulationError(
                f"{self.name}: positions {src} and {dst} not connected "
                f"on split {split}"
            )
        hops = abs(dst - src) + 1
        return hops / self.n_positions
