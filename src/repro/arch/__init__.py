"""The Synchroscalar machine model (paper Section 2).

Columns of four Blackfin-like tiles share a SIMD controller (one
instruction stream per column), a Data Orchestration Unit driving the
segment switches of a 256-bit vertical bus, and a statically assigned
clock divider and supply voltage.  A single horizontal bus links the
columns; Zero-Overhead Rate-Matching counters insert nops to match
rationally related column rates.
"""

from repro.arch.buffers import CommBuffer
from repro.arch.bus import SegmentedBus
from repro.arch.chip import Chip, Column, PORT_POSITION
from repro.arch.clocking import ClockTree
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou import Dou, DouCycle, DouProgram, DouState, linear_schedule
from repro.arch.rate_match import ZormCounter
from repro.arch.simd import SimdController
from repro.arch.tile import Tile

__all__ = [
    "CommBuffer",
    "SegmentedBus",
    "Chip",
    "Column",
    "PORT_POSITION",
    "ClockTree",
    "ChipConfig",
    "ColumnConfig",
    "Dou",
    "DouCycle",
    "DouProgram",
    "DouState",
    "linear_schedule",
    "ZormCounter",
    "SimdController",
    "Tile",
]
