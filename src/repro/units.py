"""Unit conventions used throughout the package.

The paper reports frequencies in MHz, power in mW, supply voltages in
volts, currents in mA, capacitance in fF/pF, and area in um^2 or mm^2.
We follow the same conventions so model code reads like the paper:

* frequency        -- MHz
* power            -- mW
* energy           -- pJ
* supply voltage   -- V
* current          -- mA
* capacitance      -- fF (wires) and pF (aggregates)
* area             -- um^2 for components, mm^2 for tiles/chips
* data rate        -- MS/s (mega-samples per second) or Mbps

One identity is used constantly and is worth stating once:
``power_mw = energy_pj * frequency_mhz / 1000`` because
pJ * MHz = 1e-12 J * 1e6 1/s = 1e-6 W = 1e-3 mW.
"""

MHZ_PER_GHZ = 1000.0
FF_PER_PF = 1000.0
UM2_PER_MM2 = 1.0e6
MW_PER_W = 1000.0
PA_PER_MA = 1.0e9
NA_PER_MA = 1.0e6


def pj_mhz_to_mw(energy_pj: float, frequency_mhz: float) -> float:
    """Convert an energy-per-cycle at a clock rate into milliwatts."""
    return energy_pj * frequency_mhz / 1000.0


def mw_to_nw_per_sample(power_mw: float, samples_per_second: float) -> float:
    """Energy efficiency in nanowatt-seconds per sample (nJ/sample).

    The paper's Section 5.5 expresses efficiency as "nW/sample", meaning
    power divided by sample rate; e.g. 2.43 W at 64e6 samples/s is
    38.0 nW/sample.
    """
    if samples_per_second <= 0:
        raise ValueError("samples_per_second must be positive")
    return power_mw * 1.0e6 / samples_per_second


def scale_factor(from_nm: float, to_nm: float) -> float:
    """Quadratic geometry scale factor between process nodes."""
    if from_nm <= 0 or to_nm <= 0:
        raise ValueError("process nodes must be positive")
    return (to_nm / from_nm) ** 2
