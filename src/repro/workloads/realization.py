"""Integer-divider realization cost (beyond the paper).

Section 2 generates every column clock from one reference PLL through
per-column clock dividers.  Table 4, however, assigns frequency sets
like {120, 200, 40, 380, 370} that no single reference divides into
exactly; a real chip must run each column at the smallest achievable
clock at or above its requirement and throttle the residue with ZORM,
and the supply rail must sustain that *actual* clock.

This module quantifies the resulting power overhead and searches for
the reference frequency that minimizes it - the analysis a
Synchroscalar clock-tree designer would have run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError, FrequencyRangeError
from repro.power.model import ComponentSpec, PowerModel


@dataclass(frozen=True)
class RealizedComponent:
    """One component as an integer-divided column actually runs it."""

    name: str
    requested_mhz: float
    divider: int
    actual_mhz: float
    voltage_v: float
    ideal_mw: float
    realized_mw: float

    @property
    def overhead_fraction(self) -> float:
        """Extra power paid for the divider granularity."""
        if self.ideal_mw == 0:
            return 0.0
        return self.realized_mw / self.ideal_mw - 1.0


@dataclass(frozen=True)
class RealizationResult:
    """A whole application realized from one reference clock."""

    reference_mhz: float
    components: tuple
    ideal_mw: float
    realized_mw: float

    @property
    def overhead_fraction(self) -> float:
        """Application-level realization overhead."""
        return self.realized_mw / self.ideal_mw - 1.0


def realize_spec(
    spec: ComponentSpec, reference_mhz: float, model: PowerModel
) -> RealizedComponent:
    """Run one component at its integer-divided clock.

    The divider is the largest one whose divided clock still meets the
    requested frequency; communication density rescales so words per
    second are preserved (the workload's traffic does not change, only
    the clock carrying it).
    """
    if reference_mhz < spec.frequency_mhz:
        raise ConfigurationError(
            f"{spec.name}: reference {reference_mhz} MHz below the "
            f"required {spec.frequency_mhz} MHz"
        )
    divider = max(1, int(reference_mhz // spec.frequency_mhz))
    actual = reference_mhz / divider
    scaled_comm = spec.comm.scaled(
        spec.frequency_mhz / actual if actual > 0 else 1.0
    )
    realized_spec = replace(
        spec, frequency_mhz=actual, comm=scaled_comm, voltage_v=None
    )
    ideal = model.component_power(spec)
    realized = model.component_power(realized_spec)
    return RealizedComponent(
        name=spec.name,
        requested_mhz=spec.frequency_mhz,
        divider=divider,
        actual_mhz=actual,
        voltage_v=realized.voltage_v,
        ideal_mw=ideal.total_mw,
        realized_mw=realized.total_mw,
    )


def realize_application(
    specs: list, reference_mhz: float, model: PowerModel | None = None
) -> RealizationResult:
    """Realize every component from one reference clock."""
    model = model or PowerModel()
    components = [
        realize_spec(spec, reference_mhz, model) for spec in specs
    ]
    return RealizationResult(
        reference_mhz=reference_mhz,
        components=tuple(components),
        ideal_mw=sum(c.ideal_mw for c in components),
        realized_mw=sum(c.realized_mw for c in components),
    )


def best_reference(
    specs: list,
    candidates: list | None = None,
    model: PowerModel | None = None,
) -> RealizationResult:
    """The candidate reference frequency with the least overhead.

    Default candidates sweep from the application's maximum component
    frequency up to the V-f curve ceiling in 10 MHz steps.
    """
    model = model or PowerModel()
    f_max = max(spec.frequency_mhz for spec in specs)
    if candidates is None:
        ceiling = model.curve.max_frequency_mhz(max(model.rails))
        candidates = [
            f_max + 10.0 * step
            for step in range(int((ceiling - f_max) / 10.0) + 1)
        ]
    best = None
    for reference in candidates:
        try:
            result = realize_application(specs, reference, model)
        except (ConfigurationError, FrequencyRangeError):
            continue
        if best is None or result.realized_mw < best.realized_mw:
            best = result
    if best is None:
        raise ConfigurationError("no feasible reference frequency")
    return best
