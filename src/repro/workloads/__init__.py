"""Workload models: Table 4 configurations, parallelization studies,
and the Table 3 comparator registry.

``configs`` carries the paper's exact application mappings;
``parallel`` generalizes them across tile counts for the Figure 7/9/10
studies; ``explorer`` implements the Viterbi bus-width trade-off of
Figure 8 and the leakage sweeps; ``baselines`` holds the published
platform figures of Table 3.
"""

from repro.workloads.configs import (
    ApplicationConfig,
    all_applications,
    application,
    ddc_config,
    mpeg4_cif_config,
    mpeg4_qcif_config,
    stereo_config,
    wlan_aes_config,
    wlan_config,
)
from repro.workloads.parallel import (
    ParallelComponent,
    ParallelStudy,
    parallel_studies,
)
from repro.workloads.explorer import (
    BusWidthPoint,
    LeakageStudy,
    ViterbiBusStudy,
)
from repro.workloads.baselines import (
    PlatformFigure,
    TABLE3_PLATFORMS,
    efficiency_nw_per_sample,
)

__all__ = [
    "ApplicationConfig",
    "application",
    "all_applications",
    "ddc_config",
    "stereo_config",
    "wlan_config",
    "wlan_aes_config",
    "mpeg4_qcif_config",
    "mpeg4_cif_config",
    "ParallelComponent",
    "ParallelStudy",
    "parallel_studies",
    "ViterbiBusStudy",
    "BusWidthPoint",
    "LeakageStudy",
    "PlatformFigure",
    "TABLE3_PLATFORMS",
    "efficiency_nw_per_sample",
]
