"""Design-space exploration: bus widths (Figure 8), leakage (9/10).

The Viterbi bus-width study rebuilds Figure 8's power-area trade-off:
for 8/16/32 tiles and bus widths 32..1024 bits, the ACS component's
required frequency is compute cycles plus communication serialization
cycles per trellis step; halving the bus width doubles the transfer
cycles, raising frequency and therefore voltage.  The model is
anchored so the paper's chosen point (16 tiles, 256-bit bus) lands
exactly on Table 4's 540 MHz / 1.7 V / ~3.85 W.

The leakage studies sweep per-tile leakage over Figure 9/10's x-axis
and locate crossovers between parallelization levels analytically
(power is affine in leakage current).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FrequencyRangeError
from repro.power.interconnect import CommProfile
from repro.power.model import ComponentSpec, PowerModel
from repro.sim.batch import parallel_map
from repro.tech.area import AreaModel
from repro.tech.leakage import LEAKAGE_SWEEP_MA_PER_TILE
from repro.tech.parameters import PAPER_TECHNOLOGY
from repro.tech.wires import BusGeometry
from repro.workloads.parallel import ParallelStudy

#: One information bit per trellis step at 54 Mbps.
TRELLIS_STEPS_PER_SECOND_M = 54.0
N_TRELLIS_STATES = 64
ANCHOR_TILES = 16
ANCHOR_BUS_BITS = 256
ANCHOR_FREQUENCY_MHZ = 540.0
ANCHOR_BUS_POWER_MW = 1310.0  # Table 4 ACS residual over compute+leak
ANCHOR_VOLTAGE = 1.7
SIMD_OVERHEAD_SIGMA = 0.03


@dataclass(frozen=True)
class BusWidthPoint:
    """One (tiles, bus width) evaluation of the ACS."""

    n_tiles: int
    bus_width_bits: int
    frequency_mhz: float
    voltage_v: float
    power_mw: float
    area_mm2: float
    feasible: bool


class ViterbiBusStudy:
    """Figure 8's power-area curves for the Viterbi ACS.

    ``anchor_words_per_step`` overrides the calibrated anchor traffic
    (words crossing tile boundaries per trellis step at 16 tiles) -
    the measured pipeline passes the ACS kernel's counted transfers
    here to redraw the sweep from simulation instead of the Table 4
    residual.
    """

    def __init__(
        self,
        tech=PAPER_TECHNOLOGY,
        anchor_words_per_step: float | None = None,
    ) -> None:
        self.tech = tech
        self.model = PowerModel(tech=tech, rails=tech.exploration_rails)
        self.area = AreaModel(tech)
        # Words exchanged per trellis step grow with the tile count
        # (more metric shuffling crosses tile boundaries).  Calibrated
        # so the anchor's bus power matches its Table 4 residual.
        e_word = self.model.bus_mw(
            CommProfile(1.0), 1.0, ANCHOR_VOLTAGE
        )  # mW per (word/cycle * MHz)
        if anchor_words_per_step is None:
            anchor_words_per_step = (
                ANCHOR_BUS_POWER_MW
                / (e_word * TRELLIS_STEPS_PER_SECOND_M)
            )
        self.anchor_words_per_step = anchor_words_per_step
        self._words_per_extra_tile = anchor_words_per_step / (
            ANCHOR_TILES - 1
        )
        # Compute cycles: anchor total is 10 cycles/step (540 MHz at
        # 54 Msteps/s); communication serialization takes what the
        # anchor bus needs, compute the rest.
        anchor_total = ANCHOR_FREQUENCY_MHZ / TRELLIS_STEPS_PER_SECOND_M
        anchor_comm = self.comm_cycles_per_step(
            ANCHOR_TILES, ANCHOR_BUS_BITS
        )
        per_state = (anchor_total - anchor_comm) / (
            (N_TRELLIS_STATES / ANCHOR_TILES)
            * self._overhead(ANCHOR_TILES)
        )
        self._compute_per_state = per_state

    @staticmethod
    def _overhead(n_tiles: int) -> float:
        return 1.0 + SIMD_OVERHEAD_SIGMA * (n_tiles - 1)

    def words_per_step(self, n_tiles: int) -> float:
        """Path-metric words crossing tile boundaries per step."""
        return self._words_per_extra_tile * (n_tiles - 1)

    def comm_cycles_per_step(self, n_tiles: int, bus_bits: int) -> float:
        """Serialization cycles: words / (parallel 32-bit lanes).

        Lanes scale with both the bus width (more splits) and the
        column count (each column has its own vertical bus).
        """
        columns = max(1, math.ceil(n_tiles / self.tech.tiles_per_column))
        lanes = (bus_bits / 32.0) * columns
        return self.words_per_step(n_tiles) / lanes

    def compute_cycles_per_step(self, n_tiles: int) -> float:
        """ACS arithmetic cycles per trellis step per tile."""
        return (
            self._compute_per_state
            * (N_TRELLIS_STATES / n_tiles)
            * self._overhead(n_tiles)
        )

    def required_frequency_mhz(self, n_tiles: int, bus_bits: int) -> float:
        """Clock needed to sustain 54 Mbps."""
        cycles = (
            self.compute_cycles_per_step(n_tiles)
            + self.comm_cycles_per_step(n_tiles, bus_bits)
        )
        return cycles * TRELLIS_STEPS_PER_SECOND_M

    def evaluate(self, n_tiles: int, bus_bits: int) -> BusWidthPoint:
        """Power and area of one design point."""
        frequency = self.required_frequency_mhz(n_tiles, bus_bits)
        area = self.area.chip_area_mm2([n_tiles], bus_width_bits=bus_bits)
        try:
            voltage = self.model.curve.quantize_voltage(
                frequency, self.model.rails
            )
        except FrequencyRangeError:
            return BusWidthPoint(
                n_tiles, bus_bits, frequency, float("nan"),
                float("nan"), area, feasible=False,
            )
        geometry = BusGeometry(
            width_bits=bus_bits,
            n_splits=self.tech.bus_splits,
            length_mm=self.tech.bus_length_mm,
        )
        model = PowerModel(
            tech=self.tech, rails=self.tech.exploration_rails,
            bus_geometry=geometry,
        )
        words_per_cycle = self.words_per_step(n_tiles) * (
            TRELLIS_STEPS_PER_SECOND_M / frequency
        )
        spec = ComponentSpec(
            "Viterbi ACS", n_tiles, frequency,
            CommProfile(words_per_cycle), voltage_v=voltage,
        )
        power = model.component_power(spec)
        return BusWidthPoint(
            n_tiles=n_tiles,
            bus_width_bits=bus_bits,
            frequency_mhz=frequency,
            voltage_v=voltage,
            power_mw=power.total_mw,
            area_mm2=area,
            feasible=True,
        )

    def _evaluate_point(self, point: tuple) -> BusWidthPoint:
        """Picklable single-argument adapter for the batch fan-out."""
        return self.evaluate(*point)

    def sweep(
        self,
        tile_counts: tuple = (8, 16, 32),
        bus_widths: tuple = (32, 64, 128, 256, 512, 1024),
        processes: int | None = 1,
    ) -> list:
        """All Figure 8 points (including infeasible ones, flagged).

        Points are independent, so the grid fans out through
        :func:`repro.sim.batch.parallel_map`; ``processes=1`` (the
        default) evaluates in-process, ``processes=None`` sizes the
        pool to the host.
        """
        grid = [(n, w) for n in tile_counts for w in bus_widths]
        return parallel_map(self._evaluate_point, grid, processes)


@dataclass(frozen=True)
class LeakageSeries:
    """One line of Figure 9/10: an app config across leakage currents."""

    label: str
    n_tiles: int
    leakage_ma: tuple
    power_mw: tuple


class LeakageStudy:
    """Sweeps a :class:`ParallelStudy` over per-tile leakage currents."""

    def __init__(self, study: ParallelStudy, tech=PAPER_TECHNOLOGY) -> None:
        self.study = study
        self.tech = tech

    def _power_at(self, total_tiles: int, leakage_ma: float) -> float:
        model = PowerModel(
            tech=self.tech,
            rails=self.tech.exploration_rails,
            leakage_ma_per_tile=leakage_ma,
        )
        specs = self.study.configuration(total_tiles)
        return model.application_power(self.study.name, specs).total_mw

    def series(
        self, leakage_points: tuple = LEAKAGE_SWEEP_MA_PER_TILE
    ) -> list:
        """One :class:`LeakageSeries` per allocation."""
        out = []
        for total in self.study.tile_points:
            powers = tuple(
                self._power_at(total, ma) for ma in leakage_points
            )
            out.append(LeakageSeries(
                label=f"{self.study.name} {total} Tiles",
                n_tiles=total,
                leakage_ma=tuple(leakage_points),
                power_mw=powers,
            ))
        return out

    def crossover_ma(self, tiles_a: int, tiles_b: int) -> float | None:
        """Leakage current where two configurations' power is equal.

        Power is affine in leakage (P = D + slope * I), so the
        intersection is exact.  Returns None for parallel lines or a
        negative intersection (one config dominates everywhere).
        """
        d_a = self._power_at(tiles_a, 0.0)
        d_b = self._power_at(tiles_b, 0.0)
        slope_a = self._power_at(tiles_a, 1.0) - d_a
        slope_b = self._power_at(tiles_b, 1.0) - d_b
        if math.isclose(slope_a, slope_b):
            return None
        crossing = (d_b - d_a) / (slope_a - slope_b)
        return crossing if crossing > 0 else None
