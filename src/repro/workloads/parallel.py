"""Parallelization models behind Figures 7, 9, and 10.

Each application component generalizes its Table 4 anchor across tile
counts with an efficiency model: spreading work over n tiles divides
the cycles by n but inflates them by (1 + sigma*(n-1)) for the extra
SIMD padding and communication scheduling the paper describes, so

    f(n) = f(n*) * (n*/n) * (1 + sigma*(n-1)) / (1 + sigma*(n*-1)).

Communication scales the opposite way: words per sample grow with the
tile count (more boundaries to cross), while each transfer's bus span
shrinks as the component spreads over more columns whose segments
localize traffic.  Anchor configurations reproduce Table 4 exactly by
construction; alternative tile counts come from the figures' x-axis
labels (DDC 14/26/50, SV 5/9/17, 802.11a 12/20/36, MPEG4 8/12/20/36).

Exploration configurations may exceed the Table 4 voltage envelope;
they quantize on the extended rail set (up to 2.1 V), matching
Figure 5's sweep beyond the nominal 1.65 V maximum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.interconnect import CommProfile
from repro.power.model import ComponentSpec
from repro.tech.parameters import PAPER_TECHNOLOGY

TILES_PER_COLUMN = PAPER_TECHNOLOGY.tiles_per_column


@dataclass(frozen=True)
class ParallelComponent:
    """One component's scaling law around its Table 4 anchor."""

    name: str
    anchor_tiles: int
    anchor_frequency_mhz: float
    anchor_comm: CommProfile = CommProfile()
    sigma: float = 0.06
    span_floor: float = 0.2

    def efficiency_factor(self, n_tiles: int) -> float:
        """Cycle inflation 1 + sigma*(n-1)."""
        if n_tiles < 1:
            raise ConfigurationError(f"{self.name}: n_tiles must be >= 1")
        return 1.0 + self.sigma * (n_tiles - 1)

    def frequency_at(self, n_tiles: int) -> float:
        """Required per-tile clock when spread over ``n_tiles``."""
        anchor_eff = self.efficiency_factor(self.anchor_tiles)
        return (
            self.anchor_frequency_mhz
            * (self.anchor_tiles / n_tiles)
            * self.efficiency_factor(n_tiles) / anchor_eff
        )

    def _columns(self, n_tiles: int) -> int:
        return math.ceil(n_tiles / TILES_PER_COLUMN)

    def comm_at(self, n_tiles: int) -> CommProfile:
        """Communication profile at a tile count.

        Words per *sample* scale with (n-1) boundary crossings; words
        per *cycle* therefore also scale with f(n*)/f(n).  The span of
        each transfer shrinks as columns multiply (segmented buses
        localize traffic), floored at ``span_floor``.
        """
        anchor_words = self.anchor_comm.words_per_cycle
        if anchor_words == 0.0 or n_tiles == 1:
            return CommProfile(0.0)
        denominator = max(self.anchor_tiles - 1, 1)
        growth = (n_tiles - 1) / denominator
        rate_factor = self.anchor_frequency_mhz / self.frequency_at(n_tiles)
        words = anchor_words * growth * rate_factor
        anchor_cols = self._columns(self.anchor_tiles)
        cols = self._columns(n_tiles)
        span = self.anchor_comm.span_fraction * (anchor_cols + 1) / (cols + 1)
        span = min(1.0, max(self.span_floor, span))
        return CommProfile(
            words_per_cycle=words,
            span_fraction=span,
            switching_activity=self.anchor_comm.switching_activity,
        )

    def spec_at(self, n_tiles: int) -> ComponentSpec:
        """A :class:`ComponentSpec` at an alternative tile count."""
        return ComponentSpec(
            name=self.name,
            n_tiles=n_tiles,
            frequency_mhz=self.frequency_at(n_tiles),
            comm=(self.anchor_comm if n_tiles == self.anchor_tiles
                  else self.comm_at(n_tiles)),
        )


@dataclass(frozen=True)
class ParallelStudy:
    """An application's component models plus its figure allocations."""

    name: str
    components: tuple
    allocations: dict  # total tiles -> {component name: tiles}

    def __post_init__(self) -> None:
        names = {c.name for c in self.components}
        for total, table in self.allocations.items():
            if set(table) != names:
                raise ConfigurationError(
                    f"{self.name}@{total}: allocation names mismatch"
                )
            if sum(table.values()) != total:
                raise ConfigurationError(
                    f"{self.name}@{total}: allocation sums to "
                    f"{sum(table.values())}"
                )

    @property
    def tile_points(self) -> list:
        """The figure's x-axis tile counts, ascending."""
        return sorted(self.allocations)

    def component(self, name: str) -> ParallelComponent:
        """Look up one component model."""
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(name)

    def configuration(self, total_tiles: int) -> list:
        """Component specs for one of the study's tile counts."""
        try:
            table = self.allocations[total_tiles]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: no {total_tiles}-tile allocation; "
                f"have {self.tile_points}"
            ) from None
        return [
            self.component(name).spec_at(tiles)
            for name, tiles in table.items()
        ]


def parallel_studies() -> dict:
    """The four applications' Figure 7/9/10 studies."""
    ddc = ParallelStudy(
        name="DDC",
        components=(
            ParallelComponent("Digital Mixer", 8, 120.0,
                              CommProfile(1.112)),
            ParallelComponent("CIC Integrator", 8, 200.0,
                              CommProfile(5.620)),
            ParallelComponent("CIC Comb", 2, 40.0, CommProfile(10.59)),
            ParallelComponent("CFIR", 16, 380.0, CommProfile(0.3174)),
            ParallelComponent("PFIR", 16, 370.0, CommProfile(0.006)),
        ),
        allocations={
            14: {"Digital Mixer": 1, "CIC Integrator": 2, "CIC Comb": 1,
                 "CFIR": 5, "PFIR": 5},
            26: {"Digital Mixer": 4, "CIC Integrator": 4, "CIC Comb": 2,
                 "CFIR": 8, "PFIR": 8},
            50: {"Digital Mixer": 8, "CIC Integrator": 8, "CIC Comb": 2,
                 "CFIR": 16, "PFIR": 16},
        },
    )
    stereo = ParallelStudy(
        name="SV",
        components=(
            ParallelComponent("SVD", 1, 500.0, CommProfile(0.0)),
            ParallelComponent("PFE", 16, 310.0, CommProfile(0.0)),
        ),
        allocations={
            5: {"SVD": 1, "PFE": 4},
            9: {"SVD": 1, "PFE": 8},
            17: {"SVD": 1, "PFE": 16},
        },
    )
    wlan = ParallelStudy(
        name="802.11a",
        components=(
            ParallelComponent("FFT", 2, 90.0, CommProfile(0.7935)),
            ParallelComponent("De-mod/De-Interleave", 1, 60.0,
                              CommProfile(0.3977)),
            # The ACS path-metric shuffle is global (every state needs
            # metrics from across the trellis), so its transfers span
            # the full bus no matter how many columns it occupies -
            # this is exactly the diminishing-returns mechanism the
            # paper describes for 802.11a (Section 5.2).
            ParallelComponent("Viterbi ACS", 16, 540.0,
                              CommProfile(13.56), span_floor=1.0),
            ParallelComponent("Viterbi Traceback", 1, 330.0,
                              CommProfile(0.3997)),
        ),
        allocations={
            12: {"FFT": 1, "De-mod/De-Interleave": 1, "Viterbi ACS": 9,
                 "Viterbi Traceback": 1},
            20: {"FFT": 2, "De-mod/De-Interleave": 1, "Viterbi ACS": 16,
                 "Viterbi Traceback": 1},
            36: {"FFT": 2, "De-mod/De-Interleave": 2, "Viterbi ACS": 30,
                 "Viterbi Traceback": 2},
        },
    )
    # Motion estimation parallelizes near-linearly (independent
    # macroblocks; sigma 0.005), which is what lets the 36-tile CIF
    # configuration reach the 0.7 V floor and produce Figure 10's
    # leakage crossover against the 12-tile point.
    mpeg4 = ParallelStudy(
        name="MPEG4",
        components=(
            ParallelComponent("Motion Estimation", 8, 280.0,
                              CommProfile(3.195), sigma=0.005),
            ParallelComponent("DCT/Quant/IQ/IDCT", 8, 60.0,
                              CommProfile(0.0), sigma=0.04),
        ),
        allocations={
            8: {"Motion Estimation": 6, "DCT/Quant/IQ/IDCT": 2},
            12: {"Motion Estimation": 8, "DCT/Quant/IQ/IDCT": 4},
            20: {"Motion Estimation": 16, "DCT/Quant/IQ/IDCT": 4},
            36: {"Motion Estimation": 32, "DCT/Quant/IQ/IDCT": 4},
        },
    )
    return {"ddc": ddc, "stereo": stereo, "wlan": wlan, "mpeg4": mpeg4}
