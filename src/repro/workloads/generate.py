"""Seeded scenario generation: the contracts as a fuzzable surface.

The coordinated evaluation proves the governance contracts - energy
conservation, reference/compiled bit-identity, zero deadline misses -
on five hand-built pipelines.  This module turns those contracts into
a *property*: :func:`generate_scenario` samples a random-but-feasible
:class:`~repro.workloads.coordinated.PipelineScenario` - topology
(linear, decimating, fork/join), per-stage kernels from the full app
matrix, divider ladder, governor kind, and a bursty rate trace - and
:func:`check_invariants` drives it through the standing invariant
suite on both engines.

Reproducibility is the design center ("shrinking by construction"):

* a scenario is a pure function of ``(seed, index)`` - the generator
  seeds ``numpy``'s PCG64 with exactly that pair, so any failing case
  out of a sweep of hundreds is a two-integer repro
  (``tools/repro_fuzz_case.py`` replays one verbosely);
* coverage is stratified, not sampled: the app rotates with
  ``index % len(APPS)`` and the topology with ``index // len(APPS)``,
  so any 15 consecutive indices cover every (app, topology) class;
* every sample is feasible *by construction*: stage word rates are
  capped so the peak frame fits the fastest ladder rung under the
  provisioning guard, loads are multiples of the pipeline's firing
  quantum, and the trace still forces the worst case at least once.

Every :class:`GeneratedScenario` is picklable, so sweeps fan out
through :func:`repro.sim.batch.parallel_map` unchanged.
"""

from __future__ import annotations

import hashlib
import math
import pickle
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.coordinated import (
    PIPELINE_GOVERNORS,
    PipelineScenario,
    PipelineStage,
    run_pipeline,
)

__all__ = [
    "APPS",
    "TOPOLOGIES",
    "GeneratedScenario",
    "check_case",
    "check_invariants",
    "generate_scenario",
    "generate_suite",
]

#: Conservation tolerance asserted per generated run (matches the
#: coordinated evaluation's contract).
CONSERVATION_TOLERANCE = 1e-9

#: Per-app kernel pools: (stage name, min work, max work) in pipeline
#: order.  The generator samples each stage's per-word work from its
#: range, so kernels keep their app-specific cost shape (the Viterbi
#: and AES round cores stay the heavy stages) while no two scenarios
#: are alike.
APP_KERNELS = {
    "aes": (
        ("keymix", 1, 3),
        ("sbox", 3, 6),
        ("rounds", 6, 10),
        ("serialize", 1, 2),
    ),
    "ddc": (
        ("mixer", 1, 3),
        ("cic", 4, 9),
        ("fir", 2, 6),
        ("gain", 1, 2),
    ),
    "mpeg4": (
        ("motion", 2, 5),
        ("dct", 3, 6),
        ("quant", 2, 6),
        ("entropy", 5, 12),
    ),
    "stereo": (
        ("split", 1, 2),
        ("left_fx", 3, 7),
        ("right_fx", 2, 6),
        ("downmix", 2, 5),
    ),
    "wlan": (
        ("fft", 3, 6),
        ("demap", 1, 4),
        ("viterbi", 4, 9),
    ),
}

#: App rotation order (``index % len(APPS)`` picks the app).
APPS = tuple(sorted(APP_KERNELS))

#: Topology rotation order (``index // len(APPS)`` picks the class).
TOPOLOGIES = ("linear", "decimating", "fork_join")

#: Divider ladders the generator samples (all rungs divide the epoch
#: length of every sampled frame geometry).
_LADDERS = ((1, 2, 4, 8), (1, 2, 4), (1, 4, 8), (1, 2, 8),
            (1, 2, 4, 8, 16))

#: Frame geometries: (frame_ticks, epoch_ticks).
_GEOMETRIES = ((1024, 256), (2048, 512))

#: Shares of the feasible peak the trace's load levels sit at.
_LEVEL_SHARES = (0.25, 0.45, 0.7, 1.0)

#: Headroom kept below the hard feasibility cap, absorbing pipeline
#: fill/drain latency the per-stage provisioning rule does not model.
_PEAK_MARGIN = 0.85

#: Share of the inter-column port a frame's stage load may fill.
_PORT_SHARE = 0.75


@dataclass(frozen=True)
class GeneratedScenario:
    """One sampled case: the scenario plus its reproduction identity.

    ``(seed, index)`` fully determine the sample -
    ``generate_scenario(seed, index)`` re-emits an equal instance, the
    property the shrink-free failure reports rely on.  ``class_key``
    names the coverage class the per-class counts aggregate by.
    """

    seed: int
    index: int
    app: str
    topology: str
    governor: str
    scenario: PipelineScenario

    @property
    def class_key(self) -> str:
        """Coverage class: app / topology / governor."""
        return f"{self.app}/{self.topology}/{self.governor}"


def _flow_quantum(stages, predecessors) -> int:
    """Smallest head load every stage consumes in whole firings.

    Mirrors :attr:`PipelineScenario.load_quantum` for stage tuples
    that do not form a valid scenario yet (the generator needs the
    quantum *before* it can size a legal trace).
    """
    scales: list = []
    for preds in predecessors:
        if not preds:
            scales.append(Fraction(1))
        else:
            scales.append(sum(
                scales[p] * stages[p].rate_ratio for p in preds
            ))
    quantum = 1
    for scale, stage in zip(scales, stages):
        quantum = math.lcm(
            quantum, (scale / stage.words_in).denominator
        )
    return quantum


def _feasible_peak(
    stages, predecessors, frame_ticks: int, port_capacity: int,
    guard: float,
) -> int:
    """Largest head-frame load every stage can clear at divider 1.

    Two caps per stage: the fastest rung must cover the stage's scaled
    share of the frame under the provisioning guard (so static
    provisioning exists and the feedback governors always have a safe
    rung), and one frame's stage load must fit the inter-column port
    with headroom (so a transient backlog cannot overflow).
    """
    scales: list = []
    for preds in predecessors:
        if not preds:
            scales.append(Fraction(1))
        else:
            scales.append(sum(
                scales[p] * stages[p].rate_ratio for p in preds
            ))
    cap = float(port_capacity)
    for scale, stage in zip(scales, stages):
        rate_cap = frame_ticks / (
            guard * float(scale) * stage.cycles_per_word
        )
        port_cap = _PORT_SHARE * port_capacity / float(scale)
        cap = min(cap, rate_cap, port_cap)
    return int(_PEAK_MARGIN * cap)


def _sample_stages(rng, app: str, topology: str):
    """Sample (stages, predecessors) for one coverage class."""
    pool = APP_KERNELS[app]
    works = [int(rng.integers(lo, hi + 1)) for _, lo, hi in pool]
    names = [name for name, _, _ in pool]

    if topology == "linear":
        keep = max(2, int(rng.integers(2, len(pool) + 1)))
        start = int(rng.integers(0, len(pool) - keep + 1))
        stages = tuple(
            PipelineStage(names[i], work_per_word=works[i])
            for i in range(start, start + keep)
        )
        return stages, None

    if topology == "decimating":
        stages = [
            PipelineStage(names[i], work_per_word=works[i])
            for i in range(len(pool))
        ]
        # One decimator, anywhere past the head; occasionally an
        # expander upstream of it, so non-1:1 covers both directions.
        position = int(rng.integers(1, len(stages)))
        factor = int(rng.choice((2, 4)))
        stages[position] = PipelineStage(
            names[position], work_per_word=works[position],
            words_in=factor, words_out=1,
        )
        if position > 1 and rng.random() < 0.35:
            expand = int(rng.integers(1, position))
            stages[expand] = PipelineStage(
                names[expand], work_per_word=works[expand],
                words_in=1, words_out=2,
            )
        return tuple(stages), None

    if topology == "fork_join":
        # Head broadcasts to two branches; the join consumes one word
        # from each per firing; optionally a 1:1 tail after the join.
        head = PipelineStage(names[0], work_per_word=works[0])
        left = PipelineStage(
            f"{names[1]}_a", work_per_word=works[1]
        )
        right_work = works[2 % len(works)]
        right = PipelineStage(
            f"{names[1]}_b", work_per_word=right_work
        )
        join = PipelineStage(
            names[-1], work_per_word=works[-1],
            words_in=2, words_out=int(rng.choice((1, 2))),
        )
        stages = [head, left, right, join]
        predecessors = [(), (0,), (0,), (1, 2)]
        if len(pool) > 3 and rng.random() < 0.5:
            tail = PipelineStage(
                names[-2], work_per_word=works[-2]
            )
            stages.append(tail)
            predecessors.append((3,))
        return tuple(stages), tuple(predecessors)

    raise ConfigurationError(
        f"unknown topology {topology!r}; valid: {TOPOLOGIES}"
    )


def _sample_loads(
    rng, peak: int, quantum: int, frames: int
) -> tuple:
    """A sticky bursty trace in quantum multiples, peak forced once."""
    levels = []
    for share in _LEVEL_SHARES:
        level = max(quantum, int(share * peak) // quantum * quantum)
        if not levels or level > levels[-1]:
            levels.append(level)
    index = int(rng.integers(0, len(levels)))
    loads = []
    for _ in range(frames):
        if rng.random() > 0.6:  # rate reconfiguration
            step = 1 if rng.random() < 0.5 else -1
            index = min(len(levels) - 1, max(0, index + step))
        loads.append(levels[index])
    loads[int(rng.integers(frames // 2, frames))] = levels[-1]
    return tuple(loads)


def generate_scenario(seed: int, index: int) -> GeneratedScenario:
    """The ``index``-th scenario of seed ``seed``'s suite.

    Deterministic and independent per index: the RNG is seeded with
    the ``[seed, index]`` pair itself (PCG64 key material, not a
    stream offset), so cases can be generated, sharded, and replayed
    in any order and a failure reproduces from the two integers
    alone.  App and topology are stratified by index; everything else
    - kernel costs, decimation factors, ladder, geometry, governor,
    trace - is sampled.
    """
    if seed < 0 or index < 0:
        raise ConfigurationError(
            f"seed and index must be non-negative, got "
            f"({seed}, {index})"
        )
    rng = np.random.default_rng([seed, index])
    app = APPS[index % len(APPS)]
    topology = TOPOLOGIES[(index // len(APPS)) % len(TOPOLOGIES)]
    governor = str(rng.choice(PIPELINE_GOVERNORS))

    stages, predecessors = _sample_stages(rng, app, topology)
    preds = predecessors if predecessors is not None else \
        ((),) + tuple((i - 1,) for i in range(1, len(stages)))
    frame_ticks, epoch_ticks = _GEOMETRIES[
        int(rng.integers(0, len(_GEOMETRIES)))
    ]
    ladder = _LADDERS[int(rng.integers(0, len(_LADDERS)))]
    port_capacity = 512

    quantum = _flow_quantum(stages, preds)
    # The last words of a frame traverse the stages serially - one
    # slow-rung firing per stage plus the bus hops - which the
    # per-stage rate decomposition does not model; the scenario
    # reserves that drain time out of the published deadline window
    # and the feasibility cap is computed against what remains.
    drain = min(
        frame_ticks // 3,
        ladder[-1] * sum(s.cycles_per_firing for s in stages)
        + 4 * len(stages),
    )
    peak = _feasible_peak(
        stages, preds, frame_ticks - drain, port_capacity, guard=1.3,
    )
    peak = max(quantum, peak // quantum * quantum)
    frames = int(rng.integers(5, 9))
    loads = _sample_loads(rng, peak, quantum, frames)

    scenario = PipelineScenario(
        name=f"generated {app}/{topology} (seed {seed}, "
             f"index {index})",
        key=f"gen_s{seed}_i{index}",
        frame_loads=loads,
        stages=stages,
        frame_ticks=frame_ticks,
        epoch_ticks=epoch_ticks,
        divider_ladder=ladder,
        port_capacity=port_capacity,
        predecessors=predecessors,
        drain_allowance_ticks=drain,
    )
    return GeneratedScenario(
        seed=seed,
        index=index,
        app=app,
        topology=topology,
        governor=governor,
        scenario=scenario,
    )


def generate_suite(seed: int, count: int) -> tuple:
    """The first ``count`` scenarios of one seed's suite."""
    return tuple(
        generate_scenario(seed, index) for index in range(count)
    )


def _fingerprint(stats) -> str:
    """Content hash of a run's statistics (pickle, SHA-256)."""
    return hashlib.sha256(
        pickle.dumps(stats, protocol=4)
    ).hexdigest()


def _check_books(result) -> None:
    """The ledger's books must balance term by term.

    The total must equal the sum of its domain and transition
    entries, and a gated window must carry retention leakage only -
    any dynamic or interconnect energy on a gated rail is a charging
    bug conservation alone could mask.
    """
    ledger = result.ledger
    parts = sum(entry.total_nj for entry in ledger.domains) \
        + ledger.transition_nj
    reference = max(abs(ledger.total_nj), 1.0)
    if abs(ledger.total_nj - parts) > 1e-9 * reference:
        raise AssertionError(
            f"ledger books do not balance: total {ledger.total_nj!r} "
            f"vs summed entries {parts!r}"
        )
    for entry in ledger.domains:
        if entry.gated and (
            entry.active_nj or entry.idle_nj or entry.bus_nj
        ):
            raise AssertionError(
                f"gated window {entry.name} carries non-retention "
                f"energy (active={entry.active_nj}, "
                f"idle={entry.idle_nj}, bus={entry.bus_nj})"
            )


def check_invariants(generated: GeneratedScenario) -> dict:
    """Run one generated case through the standing invariant suite.

    Asserted, in order: the governed run is bit-identical between the
    compiled and reference engines (statistics, epoch timeline,
    transition records); it is deterministic (a second compiled run
    fingerprints identically); it meets every frame deadline; energy
    conservation holds to :data:`CONSERVATION_TOLERANCE`; and the
    ledger's books balance entry by entry.  Returns a summary row for
    the fuzz artifact.  Any :class:`AssertionError` message leads
    with the ``(seed, index)`` repro pair.
    """
    label = f"(seed {generated.seed}, index {generated.index}) " \
            f"{generated.class_key}"
    try:
        compiled = run_pipeline(
            generated.scenario, generated.governor, engine="compiled"
        )
        again = run_pipeline(
            generated.scenario, generated.governor, engine="compiled"
        )
        reference = run_pipeline(
            generated.scenario, generated.governor, engine="reference"
        )
        if compiled.run.stats != reference.run.stats \
                or compiled.run.timeline != reference.run.timeline \
                or compiled.run.transitions \
                != reference.run.transitions:
            raise AssertionError(
                "compiled and reference engines disagree on the "
                "governed run - the bit-identity contract is broken"
            )
        if _fingerprint(compiled.run.stats) \
                != _fingerprint(again.run.stats):
            raise AssertionError(
                "two compiled runs of the same case fingerprint "
                "differently - the determinism contract is broken"
            )
        if compiled.deadline_misses != 0:
            raise AssertionError(
                f"{compiled.deadline_misses} deadline misses under "
                f"the {generated.governor!r} governor - the contract "
                f"requires zero"
            )
        if compiled.conservation_error > CONSERVATION_TOLERANCE:
            raise AssertionError(
                f"energy conservation error "
                f"{compiled.conservation_error:.3g} exceeds "
                f"{CONSERVATION_TOLERANCE}"
            )
        _check_books(compiled)
    except Exception as exc:
        raise AssertionError(f"{label}: {exc}") from exc
    return {
        "seed": generated.seed,
        "index": generated.index,
        "class": generated.class_key,
        "app": generated.app,
        "topology": generated.topology,
        "governor": generated.governor,
        "n_stages": generated.scenario.n_stages,
        "frames": generated.scenario.n_frames,
        "total_words": generated.scenario.total_words,
        "total_exit_words": generated.scenario.total_exit_words,
        "energy_nj": compiled.energy_nj,
        "deadline_misses": compiled.deadline_misses,
        "conservation_error": compiled.conservation_error,
        "transitions": compiled.transition_count,
        "gate_segments": len(compiled.gate_segments),
        "rail_wakes": compiled.wake_count,
    }


def check_case(case: tuple) -> dict:
    """Worker entry point: regenerate and check one ``(seed, index)``.

    Takes the bare pair (not a :class:`GeneratedScenario`) so a
    :func:`repro.sim.batch.parallel_map` sweep ships two integers per
    job and each worker proves the regeneration path it would be
    reproduced by.
    """
    seed, index = case
    return check_invariants(generate_scenario(seed, index))
