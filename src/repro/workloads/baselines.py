"""Comparator platforms (paper Table 3).

Every non-Synchroscalar row of Table 3 is a published datasheet or
ISSCC figure in the paper too; this module is the registry of those
constants plus the throughput-normalized efficiency arithmetic of
Section 5.5 (e.g. DDC on Synchroscalar: 2.43 W / 64e6 samples/s =
38.0 nW/sample versus Blackfin's 2478 nW/sample - "a factor of 60").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import mw_to_nw_per_sample


@dataclass(frozen=True)
class PlatformFigure:
    """One comparator row of Table 3."""

    application: str
    platform: str
    kind: str                      # "programmable", "asic", "fpga", "soc"
    process_um: float | None
    area_mm2: float | None
    power_mw: float
    voltage: str
    samples_per_second: float | None
    notes: str = ""

    @property
    def nw_per_sample(self) -> float | None:
        """Power per delivered sample (None if rate unknown)."""
        if not self.samples_per_second:
            return None
        return mw_to_nw_per_sample(self.power_mw, self.samples_per_second)


#: Table 3 comparator rows, keyed by application.
TABLE3_PLATFORMS = {
    "DDC": (
        PlatformFigure("DDC", "Intel Xeon 2.8 GHz", "programmable",
                       0.13, 146.0, 71000.0, "1.45", 19.0e6,
                       "1/3 of the required 64 MS/s"),
        PlatformFigure("DDC", "Blackfin 600 MHz", "programmable",
                       0.13, 2.5, 280.0, "1.2", 112.6e3,
                       "1/500 of the required rate"),
        PlatformFigure("DDC", "Graychip GC4014", "asic",
                       None, None, 250.0, "3.3", 64.0e6,
                       "full 64 MS/s"),
    ),
    "Stereo Vision": (
        PlatformFigure("Stereo Vision", "Intel Xeon 2.8 GHz",
                       "programmable", 0.13, 146.0, 71000.0, "1.45", 4.96,
                       "1/2 of the required 10 f/s"),
        PlatformFigure("Stereo Vision", "Blackfin 600 MHz",
                       "programmable", 0.13, 2.5, 280.0, "1.2", 1.46,
                       "1/7 of the required rate"),
        PlatformFigure("Stereo Vision", "FPGA [5]", "fpga",
                       None, None, 20000.0, "?", 30.0,
                       "320x240, not stereo, no SVD (15-25 W)"),
    ),
    "802.11a": (
        PlatformFigure("802.11a", "Atheros", "asic",
                       0.25, 34.68, 203.0, "2.5", 54.0e6),
        PlatformFigure("802.11a", "Icefyre", "asic",
                       0.18, None, 720.0, "?", 54.0e6,
                       "chipset including ADC"),
        PlatformFigure("802.11a", "IMEC", "asic",
                       0.18, 20.8, 146.0, "1.8", 54.0e6,
                       "area includes ADC/DAC"),
        PlatformFigure("802.11a", "NEC", "asic",
                       0.18, 119.0, 474.0, "1.5", 54.0e6,
                       "MAC+PHY, core power only"),
        PlatformFigure("802.11a", "D. Su", "asic",
                       0.25, 22.0, 121.5, "2.7", 54.0e6,
                       "PHY layer only"),
        PlatformFigure("802.11a", "Blackfin 600 MHz", "programmable",
                       0.13, 2.5, 280.0, "1.2", 556.0e3,
                       "556 kbps only"),
    ),
    "MPEG4 QCIF": (
        PlatformFigure("MPEG4 QCIF", "Amphion CS6701", "asic",
                       0.18, None, 15.0, "?", 15.0,
                       "application-specific core, QCIF @ 15 f/s"),
        PlatformFigure("MPEG4 QCIF", "Philips", "asic",
                       0.18, 20.0, 30.0, "1.8", 15.0,
                       "ASIP, QCIF @ 15 f/s"),
        PlatformFigure("MPEG4 QCIF", "Blackfin 600 MHz", "programmable",
                       0.13, 2.5, 280.0, "1.2", 15.0,
                       "QCIF @ 15 f/s"),
    ),
    "MPEG4 CIF": (
        PlatformFigure("MPEG4 CIF", "Toshiba", "soc",
                       0.13, 43.0, 160.0, "1.5", 15.0,
                       "SOC, CIF @ 15 f/s"),
    ),
}


def efficiency_nw_per_sample(power_mw: float,
                             samples_per_second: float) -> float:
    """Section 5.5's metric: power normalized by delivered rate."""
    return mw_to_nw_per_sample(power_mw, samples_per_second)


def efficiency_ratio(
    synchroscalar_mw: float,
    synchroscalar_rate: float,
    other: PlatformFigure,
) -> float | None:
    """other's nW/sample divided by Synchroscalar's (>1 = we win).

    None when the comparator's delivered rate is unknown.
    """
    ours = efficiency_nw_per_sample(synchroscalar_mw, synchroscalar_rate)
    theirs = other.nw_per_sample
    if theirs is None:
        return None
    return theirs / ours
