"""Bursty rate-varying scenarios for the runtime-DVFS evaluation.

Synchroscalar's static schedules provision every column for the
worst-case input rate; these scenarios make the worst case *rare* so
a feedback governor has something to win:

* :func:`wlan_mcs_scenario` - an 802.11a receiver whose
  modulation-and-coding scheme hops between BPSK and 64-QAM with
  realistic dwell, scaling the per-frame symbol load 8x;
* :func:`mpeg4_scene_scenario` - an MPEG-4 encoder whose motion load
  sits near a quiet baseline and spikes at scene changes, decaying
  over the following frames.

Each scenario is a deterministic frame trace (words per frame period)
executed by a streaming worker column (``recv / work / send`` per
word) behind the column's input port - the voltage-adapting
inter-domain buffer whose fill level the occupancy governor watches.
:func:`run_scenario` wires a scenario and a governor into
:func:`repro.control.epochs.run_governed`, feeds frames at their
arrival ticks, counts deadline misses against per-frame completion,
and charges an :class:`~repro.power.measured.EnergyLedger` epoch by
epoch at the time-varying operating point (transition energy
included, conservation exact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.arch.chip import Chip, PORT_POSITION
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou_compiler import Transfer, compile_schedule
from repro.control.epochs import GovernedRun, run_governed
from repro.control.governor import (
    Governor,
    OccupancyPIGovernor,
    SlackGovernor,
    StaticGovernor,
    slowest_safe_divider,
)
from repro.control.transitions import TransitionModel
from repro.errors import ConfigurationError, SimulationError
from repro.isa.assembler import assemble
from repro.power.interconnect import CommProfile
from repro.power.measured import EnergyLedger
from repro.power.model import ComponentSpec, PowerModel

__all__ = [
    "BurstyScenario",
    "ScenarioResult",
    "default_governor",
    "energy_segments",
    "mpeg4_scene_scenario",
    "run_scenario",
    "wlan_mcs_scenario",
]


@dataclass(frozen=True)
class BurstyScenario:
    """A rate-varying streaming workload with per-frame deadlines.

    Frame ``i`` arrives at tick ``i * frame_ticks`` and its words must
    be fully processed by ``(i + 1) * frame_ticks``.  ``work_per_word``
    is the unrolled compute the worker performs per word, so a word
    costs ``work_per_word + 2`` tile cycles (RECV + work + SEND).
    ``divider_ladder`` is the discrete operating-point set governors
    move along; ``epoch_ticks`` (a multiple of every ladder
    hyperperiod that also divides ``frame_ticks``) sets the control
    period.
    """

    name: str
    key: str
    frame_loads: tuple
    frame_ticks: int = 2048
    work_per_word: int = 6
    reference_mhz: float = 512.0
    divider_ladder: tuple = (1, 2, 4, 8)
    epoch_ticks: int = 512
    provision_guard: float = 1.15
    port_capacity: int = 512

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "frame_loads", tuple(int(v) for v in self.frame_loads)
        )
        object.__setattr__(
            self, "divider_ladder",
            tuple(sorted(self.divider_ladder)),
        )
        if not self.frame_loads:
            raise ConfigurationError(f"{self.name}: no frames")
        if min(self.frame_loads) < 1:
            raise ConfigurationError(
                f"{self.name}: every frame needs at least one word"
            )
        for divider in self.divider_ladder:
            if self.frame_ticks % divider != 0 \
                    or self.epoch_ticks % divider != 0:
                raise ConfigurationError(
                    f"{self.name}: frame and epoch ticks must be "
                    f"multiples of ladder divider {divider}"
                )
        if self.frame_ticks % self.epoch_ticks != 0:
            raise ConfigurationError(
                f"{self.name}: epoch_ticks must divide frame_ticks "
                f"so deadlines land on control boundaries"
            )

    @property
    def n_frames(self) -> int:
        """Frames in the trace."""
        return len(self.frame_loads)

    @property
    def total_words(self) -> int:
        """Words across the whole trace."""
        return sum(self.frame_loads)

    @property
    def peak_words(self) -> int:
        """The heaviest frame - what static provisioning sizes for."""
        return max(self.frame_loads)

    @property
    def cycles_per_word(self) -> int:
        """Tile cycles each word costs (RECV + work + SEND)."""
        return self.work_per_word + 2

    def static_divider(self) -> int:
        """Worst-case provisioning: the slowest always-safe divider.

        The largest ladder divider whose clock still processes the
        *peak* frame inside one frame period with the provisioning
        guard - the operating point a startup-only schedule must pick
        for the whole run.  Uses the same
        :func:`~repro.control.governor.slowest_safe_divider` rule the
        deadline governor applies per decision, so baseline and
        governor can never drift apart.
        """
        divider = slowest_safe_divider(
            self.divider_ladder, self.frame_ticks, self.peak_words,
            self.cycles_per_word, self.provision_guard,
        )
        if divider is None:
            raise ConfigurationError(
                f"{self.name}: peak frame of {self.peak_words} words "
                f"cannot be sustained even at divider "
                f"{self.divider_ladder[0]}"
            )
        return divider

    def build_chip(self, divider: int | None = None) -> Chip:
        """A one-column streaming worker chip for this scenario."""
        start = divider if divider is not None else self.static_divider()
        work = "\n".join(
            "  addi r2, r2, 1" for _ in range(self.work_per_word)
        )
        program = assemble(f"""
            tmask 0x1            ; tile 0 is the stream worker
            movi r2, 0
            loop {self.total_words}
              recv r1
{work}
              send r1
            endloop
            halt
        """, f"{self.key}-worker")
        dou = compile_schedule(
            [
                [Transfer(src=PORT_POSITION, dsts=(0,))],
                [Transfer(src=0, dsts=(PORT_POSITION,))],
            ],
            name=f"{self.key}-stream",
        )
        config = ChipConfig(
            reference_mhz=self.reference_mhz,
            columns=(ColumnConfig(divider=start),),
            port_capacity=self.port_capacity,
            strict_schedules=False,
        )
        return Chip(config, programs=[program], dou_programs=[dou])


def _mcs_loads(frames: int, seed: int) -> tuple:
    """A WLAN modulation-and-coding trace: sticky MCS with hops."""
    rng = np.random.default_rng(seed)
    levels = (12, 24, 48, 96)  # BPSK .. 64-QAM words per frame
    level = 1
    loads = []
    for _ in range(frames):
        roll = rng.random()
        if roll > 0.65:  # hop one MCS step, biased upward
            step = 1 if rng.random() < 0.55 else -1
            level = min(len(levels) - 1, max(0, level + step))
        loads.append(levels[level])
    # Guarantee the trace really exercises the worst case once.
    loads[int(rng.integers(frames // 2, frames))] = levels[-1]
    return tuple(loads)


def wlan_mcs_scenario(
    frames: int = 24, seed: int = 7
) -> BurstyScenario:
    """802.11a receive with runtime modulation changes."""
    return BurstyScenario(
        name="WLAN variable MCS",
        key="wlan_mcs",
        frame_loads=_mcs_loads(frames, seed),
    )


def _scene_loads(frames: int, seed: int) -> tuple:
    """An MPEG-4 motion-load trace with scene-change spikes."""
    rng = np.random.default_rng(seed)
    loads = []
    decay = ()
    for index in range(frames):
        if decay:
            loads.append(decay[0])
            decay = decay[1:]
            continue
        if index > 0 and rng.random() < 0.18:  # scene change
            loads.append(96)
            decay = (64, 40)
            continue
        loads.append(int(20 + rng.integers(0, 9)))  # quiet baseline
    return tuple(loads)


def mpeg4_scene_scenario(
    frames: int = 24, seed: int = 11
) -> BurstyScenario:
    """MPEG-4 encode with scene-dependent motion load."""
    return BurstyScenario(
        name="MPEG-4 scene changes",
        key="mpeg4_scene",
        frame_loads=_scene_loads(frames, seed),
    )


def default_governor(
    kind: str, scenario: BurstyScenario
) -> Governor:
    """Construct one of the evaluated policies for a scenario."""
    ladder = scenario.divider_ladder
    if kind == "static":
        return StaticGovernor((scenario.static_divider(),))
    if kind == "occupancy_pi":
        return OccupancyPIGovernor(ladder)
    if kind == "slack":
        return SlackGovernor(ladder)
    raise ConfigurationError(
        f"unknown governor kind {kind!r}; valid: "
        f"['occupancy_pi', 'slack', 'static']"
    )


@dataclass
class ScenarioResult:
    """A governed scenario run with deadlines and energy settled."""

    scenario: BurstyScenario
    governor: str
    run: GovernedRun
    ledger: EnergyLedger
    deadline_misses: int
    produced_samples: tuple
    conservation_error: float

    @property
    def energy_nj(self) -> float:
        """Total energy including transition charges."""
        return self.ledger.total_nj

    @property
    def transition_nj(self) -> float:
        """Energy charged to rail transitions."""
        return self.ledger.transition_nj

    @property
    def transition_count(self) -> int:
        """Committed operating-point changes."""
        return self.run.transition_count

    @property
    def average_mw(self) -> float:
        """Mean power over the simulated run."""
        time_us = self.run.stats.simulated_time_us
        if time_us <= 0:
            return 0.0
        return self.energy_nj / time_us

    @property
    def idle_fraction(self) -> float:
        """Idle (bubble + stall) share of tile cycles over the epochs.

        Over-provisioned runs burn most of their cycles stalled on an
        empty input buffer; a well-governed run converts that idle
        time into slower, cheaper cycles - the quantity that makes
        the energy comparison legible.
        """
        cycles = sum(
            activity.tile_cycles
            for epoch in self.run.timeline
            for activity in epoch.column_activity
        )
        idle = sum(
            activity.idle
            for epoch in self.run.timeline
            for activity in epoch.column_activity
        )
        return idle / cycles if cycles else 0.0

    def frequency_residency(self, column: int = 0) -> dict:
        """Per-domain frequency residency histogram."""
        return self.run.stats_with_epochs.frequency_residency(column)


class _ScenarioHarness:
    """Feeds frames, drains outputs, and publishes deadline slack."""

    def __init__(self, scenario: BurstyScenario, chip: Chip) -> None:
        self.scenario = scenario
        self.chip = chip
        self.fed_frames = 0
        self.produced = 0
        self.samples: list = []

    def before_epoch(self, chip: Chip, epoch: int) -> None:
        tick = chip.reference_ticks
        self.produced += chip.columns[0].h_out.drain()
        scenario = self.scenario
        while self.fed_frames < scenario.n_frames \
                and self.fed_frames * scenario.frame_ticks <= tick:
            words = scenario.frame_loads[self.fed_frames]
            if len(chip.columns[0].h_in) + words \
                    > chip.columns[0].h_in.capacity:
                raise SimulationError(
                    f"{scenario.name}: input port overflow at tick "
                    f"{tick} - raise port_capacity or fix the governor"
                )
            chip.feed_column(0, [1 + (w % 97) for w in range(words)])
            self.fed_frames += 1
        self.samples.append((tick, self.produced))

    def telemetry_extras(self, chip: Chip, epoch: int) -> dict:
        scenario = self.scenario
        tick = chip.reference_ticks
        frame_ticks = scenario.frame_ticks
        arrived = min(
            scenario.n_frames - 1, tick // frame_ticks
        )
        due_words = sum(scenario.frame_loads[:arrived + 1])
        next_deadline = (arrived + 1) * frame_ticks
        return {
            "words_to_deadline": max(0, due_words - self.produced),
            "ticks_to_deadline": max(1, next_deadline - tick),
            "cycles_per_word": float(scenario.cycles_per_word),
        }

    def finish(self, run: GovernedRun) -> None:
        """Account the words still in flight at halt time.

        Words the worker SENT before halting only reach the output
        port during the post-halt bus drain, so they are credited at
        the drain's end tick - the conservative timestamp: a deadline
        falling between halt and drain-end counts them as late.
        """
        while not self.chip.columns[0].h_out.is_empty:
            self.chip.columns[0].h_out.pop()
            self.produced += 1
        self.samples.append(
            (run.stats.reference_ticks, self.produced)
        )

    def deadline_misses(self) -> int:
        """Frames whose words were not all out by their deadline."""
        scenario = self.scenario
        misses = 0
        due = 0
        for index, words in enumerate(scenario.frame_loads):
            due += words
            deadline = (index + 1) * scenario.frame_ticks
            produced_by_deadline = 0
            for tick, produced in self.samples:
                if tick <= deadline:
                    produced_by_deadline = max(
                        produced_by_deadline, produced
                    )
            if produced_by_deadline < due:
                misses += 1
        return misses


def energy_segments(run: GovernedRun, name: str = "run") -> list:
    """Tile a governed run's tick span into chargeable segments.

    Returns ``(dividers, duration_ticks, column_activity | None)``
    triples: one per epoch window, plus a final activity-free segment
    for the post-halt bus drain at the last committed clock.  The
    *coverage* invariant is checked here - the segments must tile the
    run's full reference-tick span exactly, so a dropped epoch or
    drain window raises :class:`~repro.errors.SimulationError` instead
    of silently undercounting energy.  Both the single-column DVFS
    charger and the coordinated pipeline charger build on this.
    """
    segments = [
        (epoch.dividers, epoch.duration_ticks, epoch.column_activity)
        for epoch in run.timeline
    ]
    covered = run.timeline[-1].end_tick if run.timeline else 0
    drain = run.stats.reference_ticks - covered
    if drain > 0 and run.timeline:
        segments.append((run.timeline[-1].dividers, drain, None))
    tiled = sum(ticks for _, ticks, _ in segments)
    if tiled != run.stats.reference_ticks:
        raise SimulationError(
            f"{name}: energy segments cover {tiled} of "
            f"{run.stats.reference_ticks} reference ticks - the "
            f"ledger would undercount"
        )
    return segments


def _charge_ledger(
    scenario: BurstyScenario,
    run: GovernedRun,
    model: PowerModel,
) -> tuple:
    """EnergyLedger over the time-varying timeline; exact by epoch.

    Each (epoch, column) window is charged at that epoch's frequency
    and minimum rail with the epoch's measured busy split and bus
    density; the post-halt drain is charged idle at the final
    operating point; every rail transition adds its charge energy.

    Two checks guard the accounting: the coverage invariant enforced
    by :func:`energy_segments`, and the returned conservation error,
    which re-accumulates sum(power x time) + transitions alongside
    the ledger and so verifies the ledger's own term-splitting (the
    window coverage is what makes the first check trustworthy).
    """
    ledger = EnergyLedger()
    expected = 0.0
    reference_mhz = scenario.reference_mhz
    segments = energy_segments(run, scenario.name)
    for index, (dividers, ticks, activity) in enumerate(segments):
        time_us = ticks / reference_mhz
        for column, divider in enumerate(dividers):
            delta = activity[column] if activity is not None else None
            spec = ComponentSpec(
                name=f"seg{index}.col{column}",
                n_tiles=run.stats.column(column).n_tiles,
                frequency_mhz=reference_mhz / divider,
                comm=CommProfile(
                    words_per_cycle=(
                        delta.words_per_cycle if delta else 0.0
                    ),
                ),
            )
            power = model.component_power(spec)
            ledger.charge(
                power, time_us,
                busy_fraction=delta.busy_fraction if delta else 0.0,
            )
            expected += power.total_mw * time_us
    for record in run.transitions:
        ledger.charge_transition(record.label, record.energy_nj)
        expected += record.energy_nj
    if expected > 0:
        error = abs(ledger.total_nj - expected) / expected
    else:
        error = abs(ledger.total_nj)
    return ledger, error


_DEFAULT_TRANSITION_MODEL: TransitionModel | None = None
_DEFAULT_POWER_MODEL: PowerModel | None = None


def _default_transition_model() -> TransitionModel:
    """Shared paper-default transition model.

    Both defaults are pure evaluators over module-constant technology
    parameters (the stateful part, ``TransitionEngine``, is built per
    run), so every scenario run can reuse one instance instead of
    refitting the voltage curve and wire model each call.
    """
    global _DEFAULT_TRANSITION_MODEL
    if _DEFAULT_TRANSITION_MODEL is None:
        _DEFAULT_TRANSITION_MODEL = TransitionModel()
    return _DEFAULT_TRANSITION_MODEL


def _default_power_model() -> PowerModel:
    """Shared paper-default power model (see above)."""
    global _DEFAULT_POWER_MODEL
    if _DEFAULT_POWER_MODEL is None:
        _DEFAULT_POWER_MODEL = PowerModel()
    return _DEFAULT_POWER_MODEL


def run_scenario(
    scenario: BurstyScenario,
    governor: Governor | str,
    engine: str = "auto",
    transition_model: TransitionModel | None = None,
    model: PowerModel | None = None,
    max_ticks: int | None = None,
) -> ScenarioResult:
    """Run one scenario under one governor; settle deadlines + energy."""
    if isinstance(governor, str):
        governor = default_governor(governor, scenario)
    if transition_model is None:
        transition_model = _default_transition_model()
    if model is None:
        model = _default_power_model()
    chip = scenario.build_chip()
    harness = _ScenarioHarness(scenario, chip)
    budget = max_ticks if max_ticks is not None else (
        (scenario.n_frames + 8) * scenario.frame_ticks * 4
    )
    run = run_governed(
        chip,
        governor,
        transition_model=transition_model,
        engine=engine,
        epoch_ticks=scenario.epoch_ticks,
        max_ticks=budget,
        before_epoch=harness.before_epoch,
        telemetry_extras=harness.telemetry_extras,
    )
    harness.finish(run)
    if harness.produced != scenario.total_words:
        raise SimulationError(
            f"{scenario.name}: produced {harness.produced} of "
            f"{scenario.total_words} words - the worker and trace "
            f"disagree"
        )
    ledger, error = _charge_ledger(scenario, run, model)
    return ScenarioResult(
        scenario=scenario,
        governor=governor.name,
        run=run,
        ledger=ledger,
        deadline_misses=harness.deadline_misses(),
        produced_samples=tuple(harness.samples),
        conservation_error=error,
    )
