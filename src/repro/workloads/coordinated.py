"""Multi-column governed pipelines for the coordinated evaluation.

The bursty scenarios of :mod:`repro.workloads.dvfs` exercise one
governed column; these scenarios govern whole *pipelines* - the
paper's actual mapping style, where each column is one stage of the
DDC or 802.11a receive chain running at its own rationally related
clock.  A :class:`PipelineScenario` builds an N-column chip (one
streaming worker per stage, horizontal bus moving words stage to
stage) and a rate-varying frame trace; :func:`run_pipeline` drives it
under one of three policies:

* ``static`` - per-stage worst-case provisioning (the paper's
  startup-only schedule applied to every stage);
* ``independent`` - one per-column deadline governor per stage, each
  consuming only the chip-global deadline signal (PR 3's slack
  governor replicated per column, no cross-domain state);
* ``coordinated`` - the chip-level
  :class:`~repro.control.coordinator.CoordinatedGovernor`: per-stage
  slack governors under rate matching, single-boundary commits, and
  power gating of quiescent columns in the energy ledger.

Deadlines are counted at the *end of the pipe* (a frame's words must
all leave the last stage by the next frame boundary), and the energy
ledger charges every (epoch, column) window at its committed
operating point with gated-rail accounting for windows the
coordinator proves quiescent - conservation stays exact including
transition and re-wake charges.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.arch.chip import Chip, PORT_POSITION
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou_compiler import Transfer, compile_schedule
from repro.control.coordinator import (
    CoordinatedGovernor,
    plan_power_gating,
)
from repro.control.epochs import GovernedRun, run_governed
from repro.control.governor import (
    Governor,
    SlackGovernor,
    StaticGovernor,
    slowest_safe_divider,
)
from repro.control.transitions import TransitionModel
from repro.errors import ConfigurationError, SimulationError
from repro.isa.assembler import assemble
from repro.power.interconnect import CommProfile
from repro.power.measured import EnergyLedger
from repro.power.model import ComponentSpec, PowerModel
from repro.workloads.dvfs import _mcs_loads, energy_segments

__all__ = [
    "IndependentSlackGovernor",
    "PIPELINE_GOVERNORS",
    "PipelineResult",
    "PipelineScenario",
    "PipelineStage",
    "charge_pipeline_ledger",
    "ddc_pipeline_scenario",
    "pipeline_governor",
    "run_pipeline",
    "wlan_rx_pipeline_scenario",
]

#: Leakage share still drawn by a power-gated rail (retention cells
#: and the gating header); see EnergyLedger.charge_gated.
GATED_LEAKAGE_FRACTION = 0.05


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage: a column's streaming kernel shape.

    ``work_per_word`` is the unrolled compute between the RECV and the
    SEND, so a word costs ``work_per_word + 2`` tile cycles - the
    per-stage rate currency every provisioning and matching rule uses.
    """

    name: str
    work_per_word: int

    def __post_init__(self) -> None:
        if self.work_per_word < 1:
            raise ConfigurationError(
                f"stage {self.name}: work_per_word must be positive"
            )

    @property
    def cycles_per_word(self) -> int:
        """Tile cycles one word costs (RECV + work + SEND)."""
        return self.work_per_word + 2


@dataclass(frozen=True)
class PipelineScenario:
    """A rate-varying workload on an N-stage column pipeline.

    Frame ``i`` arrives at the first stage at tick
    ``i * frame_ticks``; its words must have left the *last* stage by
    ``(i + 1) * frame_ticks``.  Words flow stage to stage over the
    horizontal bus (one round-robin DOU state per adjacent channel),
    through the voltage-adapting inter-column ports whose occupancy
    the governors watch.  ``epoch_ticks`` must divide ``frame_ticks``
    and be a multiple of every ladder divider so deadlines and
    commits land on control boundaries.
    """

    name: str
    key: str
    frame_loads: tuple
    stages: tuple
    frame_ticks: int = 2048
    reference_mhz: float = 512.0
    divider_ladder: tuple = (1, 2, 4, 8)
    epoch_ticks: int = 512
    provision_guard: float = 1.3
    coordination_guard: float = 1.25
    port_capacity: int = 512

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "frame_loads", tuple(int(v) for v in self.frame_loads)
        )
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(
            self, "divider_ladder",
            tuple(sorted(self.divider_ladder)),
        )
        if len(self.stages) < 2:
            raise ConfigurationError(
                f"{self.name}: a pipeline needs at least two stages"
            )
        for stage in self.stages:
            if not isinstance(stage, PipelineStage):
                raise ConfigurationError(
                    f"{self.name}: stages must be PipelineStage "
                    f"instances"
                )
        if not self.frame_loads:
            raise ConfigurationError(f"{self.name}: no frames")
        if min(self.frame_loads) < 1:
            raise ConfigurationError(
                f"{self.name}: every frame needs at least one word"
            )
        for divider in self.divider_ladder:
            if self.frame_ticks % divider != 0 \
                    or self.epoch_ticks % divider != 0:
                raise ConfigurationError(
                    f"{self.name}: frame and epoch ticks must be "
                    f"multiples of ladder divider {divider}"
                )
        if self.frame_ticks % self.epoch_ticks != 0:
            raise ConfigurationError(
                f"{self.name}: epoch_ticks must divide frame_ticks "
                f"so deadlines land on control boundaries"
            )

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """Pipeline depth (columns on the chip)."""
        return len(self.stages)

    @property
    def n_frames(self) -> int:
        """Frames in the trace."""
        return len(self.frame_loads)

    @property
    def total_words(self) -> int:
        """Words across the whole trace."""
        return sum(self.frame_loads)

    @property
    def peak_words(self) -> int:
        """The heaviest frame - what static provisioning sizes for."""
        return max(self.frame_loads)

    @property
    def stage_cycles(self) -> tuple:
        """Per-stage tile cycles per word, pipeline order."""
        return tuple(s.cycles_per_word for s in self.stages)

    # ------------------------------------------------------------------
    # provisioning
    # ------------------------------------------------------------------
    def static_dividers(self) -> tuple:
        """Per-stage worst-case provisioning (startup-only clocking).

        Each stage independently takes the slowest ladder rung that
        still processes the *peak* frame inside one frame period with
        the provisioning guard - exactly the paper's per-column rate
        matching, applied to the worst case because a static schedule
        cannot revisit the choice.
        """
        dividers = []
        for stage in self.stages:
            divider = slowest_safe_divider(
                self.divider_ladder, self.frame_ticks, self.peak_words,
                stage.cycles_per_word, self.provision_guard,
            )
            if divider is None:
                raise ConfigurationError(
                    f"{self.name}: stage {stage.name} cannot sustain "
                    f"the peak frame of {self.peak_words} words even "
                    f"at divider {self.divider_ladder[0]}"
                )
            dividers.append(divider)
        return tuple(dividers)

    # ------------------------------------------------------------------
    # chip construction
    # ------------------------------------------------------------------
    def build_chip(self, dividers: tuple | None = None) -> Chip:
        """An N-column streaming pipeline chip for this scenario."""
        start = tuple(dividers) if dividers is not None \
            else self.static_dividers()
        if len(start) != self.n_stages:
            raise ConfigurationError(
                f"{self.name}: {self.n_stages} stages but "
                f"{len(start)} start dividers"
            )
        programs = []
        dou_programs = []
        for index, stage in enumerate(self.stages):
            work = "\n".join(
                "  addi r2, r2, 1"
                for _ in range(stage.work_per_word)
            )
            programs.append(assemble(f"""
                tmask 0x1            ; tile 0 is the stage worker
                movi r2, 0
                loop {self.total_words}
                  recv r1
{work}
                  send r1
                endloop
                halt
            """, f"{self.key}-{stage.name}"))
            dou_programs.append(compile_schedule(
                [
                    [Transfer(src=PORT_POSITION, dsts=(0,))],
                    [Transfer(src=0, dsts=(PORT_POSITION,))],
                ],
                name=f"{self.key}-{stage.name}-stream",
            ))
        horizontal = compile_schedule(
            [
                [Transfer(src=index, dsts=(index + 1,))]
                for index in range(self.n_stages - 1)
            ],
            n_positions=self.n_stages,
            name=f"{self.key}-hbus",
        )
        config = ChipConfig(
            reference_mhz=self.reference_mhz,
            columns=tuple(
                ColumnConfig(divider=d) for d in start
            ),
            port_capacity=self.port_capacity,
            strict_schedules=False,
        )
        return Chip(
            config,
            programs=programs,
            dou_programs=dou_programs,
            horizontal_dou=horizontal,
        )


# ----------------------------------------------------------------------
# scenario factories
# ----------------------------------------------------------------------
def _band_loads(frames: int, seed: int) -> tuple:
    """A DDC channel-bandwidth trace: sticky rate with reconfigs."""
    rng = np.random.default_rng(seed)
    levels = (16, 32, 64, 96)  # narrowband .. full-rate words/frame
    level = 1
    loads = []
    for _ in range(frames):
        if rng.random() > 0.7:  # carrier/bandwidth reconfiguration
            step = 1 if rng.random() < 0.5 else -1
            level = min(len(levels) - 1, max(0, level + step))
        loads.append(levels[level])
    # Exercise the worst case at least once.
    loads[int(rng.integers(frames // 2, frames))] = levels[-1]
    return tuple(loads)


def ddc_pipeline_scenario(
    frames: int = 20, seed: int = 5
) -> PipelineScenario:
    """The DDC front end, governed end to end.

    Four stages mirror the Section 2 mapping - NCO/mixer, CIC
    decimator, compensation FIR, and gain stage - with per-word costs
    chosen so the static schedule must spread the pipeline across
    four different rungs (the paper's rational-clocking claim made
    dynamic).
    """
    return PipelineScenario(
        name="DDC pipeline (governed end to end)",
        key="ddc_pipeline",
        frame_loads=_band_loads(frames, seed),
        stages=(
            PipelineStage("mixer", work_per_word=2),
            PipelineStage("cic", work_per_word=8),
            PipelineStage("fir", work_per_word=4),
            PipelineStage("gain", work_per_word=1),
        ),
    )


def wlan_rx_pipeline_scenario(
    frames: int = 20, seed: int = 7
) -> PipelineScenario:
    """An 802.11a receive chain under runtime MCS changes.

    Three stages - FFT, demapper, Viterbi - share the WLAN
    variable-MCS frame trace of the single-column evaluation, so the
    coordinated results are directly comparable with PR 3's.
    """
    return PipelineScenario(
        name="WLAN variable-MCS receiver pipeline",
        key="wlan_rx_pipeline",
        frame_loads=_mcs_loads(frames, seed),
        stages=(
            PipelineStage("fft", work_per_word=4),
            PipelineStage("demap", work_per_word=2),
            PipelineStage("viterbi", work_per_word=6),
        ),
    )


# ----------------------------------------------------------------------
# governors
# ----------------------------------------------------------------------
#: Policy names run_pipeline accepts (the evaluation compares all).
PIPELINE_GOVERNORS = ("static", "independent", "coordinated")


class IndependentSlackGovernor(Governor):
    """Per-column deadline governors with no cross-domain state.

    The uncoordinated middle ground the evaluation compares against:
    every stage runs PR 3's :class:`SlackGovernor` on the *chip-global*
    deadline signal (due words not yet out of the pipe) with its own
    per-word cost.  Each stage therefore provisions as if it alone had
    to clear the whole remaining backlog - deadline-safe, but blind to
    how much of that work other stages have already retired, to what
    its producer can actually deliver, and to any gating opportunity;
    exactly the information the chip-level coordinator adds.
    """

    name = "independent"

    def __init__(
        self, ladder, cycles_per_word, guard: float = 1.25
    ) -> None:
        self.cycles_per_word = tuple(float(c) for c in cycles_per_word)
        if not self.cycles_per_word:
            raise ConfigurationError(
                "cycles_per_word needs at least one stage"
            )
        self.governors = [
            SlackGovernor(ladder, columns=(i,), guard=guard)
            for i in range(len(self.cycles_per_word))
        ]

    def reset(self) -> None:
        for governor in self.governors:
            governor.reset()

    def decide(self, telemetry) -> tuple:
        dividers = list(telemetry.dividers)
        for stage, governor in enumerate(self.governors):
            if telemetry.halted[stage]:
                continue
            extras = dict(telemetry.extras)
            # Only the stage's own per-word cost is local knowledge;
            # the words owed stay chip-global (no per-stage progress
            # sharing between independent controllers).
            extras.pop("stage_words_to_deadline", None)
            extras["cycles_per_word"] = self.cycles_per_word[stage]
            view = replace(telemetry, extras=extras)
            dividers[stage] = governor.decide(view)[stage]
        return tuple(dividers)


def pipeline_governor(
    kind: str, scenario: PipelineScenario
) -> Governor:
    """Construct one of the evaluated pipeline policies.

    Raises
    ------
    ConfigurationError
        For names outside :data:`PIPELINE_GOVERNORS`, with the valid
        choices listed.
    """
    if kind == "static":
        return StaticGovernor(scenario.static_dividers())
    if kind == "independent":
        return IndependentSlackGovernor(
            scenario.divider_ladder,
            scenario.stage_cycles,
            guard=scenario.coordination_guard,
        )
    if kind == "coordinated":
        return CoordinatedGovernor(
            scenario.divider_ladder,
            scenario.stage_cycles,
            guard=scenario.coordination_guard,
        )
    raise ConfigurationError(
        f"unknown pipeline governor {kind!r}; valid: "
        f"{sorted(PIPELINE_GOVERNORS)}"
    )


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
class _PipelineHarness:
    """Feeds the head stage, drains the tail, publishes deadlines."""

    def __init__(
        self, scenario: PipelineScenario, chip: Chip
    ) -> None:
        self.scenario = scenario
        self.chip = chip
        self.fed_frames = 0
        self.produced = 0
        self.samples: list = []

    def before_epoch(self, chip: Chip, epoch: int) -> None:
        tick = chip.reference_ticks
        tail = chip.columns[-1]
        while not tail.h_out.is_empty:
            tail.h_out.pop()
            self.produced += 1
        scenario = self.scenario
        while self.fed_frames < scenario.n_frames \
                and self.fed_frames * scenario.frame_ticks <= tick:
            words = scenario.frame_loads[self.fed_frames]
            head = chip.columns[0]
            if len(head.h_in) + words > head.h_in.capacity:
                raise SimulationError(
                    f"{scenario.name}: head-stage port overflow at "
                    f"tick {tick} - raise port_capacity or fix the "
                    f"governor"
                )
            chip.feed_column(0, [1 + (w % 97) for w in range(words)])
            self.fed_frames += 1
        self.samples.append((tick, self.produced))

    def _due_words(self, tick: int) -> tuple:
        scenario = self.scenario
        arrived = min(
            scenario.n_frames - 1, tick // scenario.frame_ticks
        )
        due = sum(scenario.frame_loads[:arrived + 1])
        next_deadline = (arrived + 1) * scenario.frame_ticks
        return due, next_deadline

    def telemetry_extras(self, chip: Chip, epoch: int) -> dict:
        """Chip-level deadline signals, end-of-pipe and per-stage.

        ``stage_words_to_deadline[i]`` subtracts from the due words
        everything already *past* stage ``i`` - the words produced at
        the pipe exit plus every word queued in a port downstream of
        the stage's own input - so each stage's slack governor sees
        only the work that is genuinely still its own.
        """
        scenario = self.scenario
        tick = chip.reference_ticks
        due, next_deadline = self._due_words(tick)
        columns = chip.columns
        stage_words = []
        for index in range(scenario.n_stages):
            past = self.produced + len(columns[index].h_out)
            for downstream in columns[index + 1:]:
                past += len(downstream.h_in) + len(downstream.h_out)
            stage_words.append(max(0, due - past))
        return {
            "words_to_deadline": max(0, due - self.produced),
            "ticks_to_deadline": max(1, next_deadline - tick),
            "cycles_per_word": float(max(scenario.stage_cycles)),
            "stage_words_to_deadline": tuple(stage_words),
            "stage_cycles_per_word": tuple(
                float(c) for c in scenario.stage_cycles
            ),
        }

    def finish(self, run: GovernedRun) -> None:
        """Credit words that only left during the post-halt drain."""
        tail = self.chip.columns[-1]
        while not tail.h_out.is_empty:
            tail.h_out.pop()
            self.produced += 1
        self.samples.append(
            (run.stats.reference_ticks, self.produced)
        )

    def deadline_misses(self) -> int:
        """Frames whose words had not all left the pipe in time."""
        scenario = self.scenario
        misses = 0
        due = 0
        for index, words in enumerate(scenario.frame_loads):
            due += words
            deadline = (index + 1) * scenario.frame_ticks
            produced_by_deadline = 0
            for tick, produced in self.samples:
                if tick <= deadline:
                    produced_by_deadline = max(
                        produced_by_deadline, produced
                    )
            if produced_by_deadline < due:
                misses += 1
        return misses


# ----------------------------------------------------------------------
# energy accounting with power gating
# ----------------------------------------------------------------------
def charge_pipeline_ledger(
    scenario: PipelineScenario,
    run: GovernedRun,
    model: PowerModel,
    transition_model: TransitionModel,
    gating: bool = True,
) -> tuple:
    """Ledger over the pipeline timeline, with gated-rail windows.

    Every (epoch, column) window is charged at that epoch's committed
    operating point with the window's measured busy split, exactly as
    the single-column charger does; additionally, when ``gating`` is
    on, the coordinator's gate plan
    (:func:`~repro.control.coordinator.plan_power_gating`) marks fully
    quiescent windows, and each candidate segment is gated only if the
    retention savings beat its re-wake rail charge - the break-even
    rule that keeps gating from thrashing on short idles.  Gated
    windows charge at the gated rate (retention leakage only); a
    wake-free tail segment's gate extends through the post-halt drain
    window (that rail is off for good); every applied wake prices
    ``1/2 C_rail V^2`` through
    :meth:`~repro.control.transitions.TransitionModel.wake_energy_nj`.

    Returns ``(ledger, conservation_error, applied_gate_segments)``;
    the error re-accumulates the expected energy alongside the ledger
    (power x time over ungated windows, retention energy over gated
    ones, plus every transition and wake charge), so conservation
    stays exact by construction and any term-splitting bug raises the
    relative error above the asserted tolerance.
    """
    segments = energy_segments(run, scenario.name)
    reference_mhz = scenario.reference_mhz
    n_columns = scenario.n_stages

    # Evaluate every (segment, column) operating point once.
    powers = []
    for index, (dividers, ticks, activity) in enumerate(segments):
        row = []
        for column in range(n_columns):
            delta = activity[column] if activity is not None else None
            spec = ComponentSpec(
                name=f"seg{index}.col{column}",
                n_tiles=run.stats.column(column).n_tiles,
                frequency_mhz=reference_mhz / dividers[column],
                comm=CommProfile(
                    words_per_cycle=(
                        delta.words_per_cycle if delta else 0.0
                    ),
                ),
            )
            row.append(model.component_power(spec))
        powers.append(row)

    # Decide which candidate gate segments pay for themselves.  A
    # wake-free tail segment powers its column off for good, so its
    # gate extends through the post-halt drain segment too - the
    # drain window must not be charged ungated for a rail the
    # coordinator declared permanently off.
    n_epochs = len(run.timeline)
    has_drain = len(segments) == n_epochs + 1
    applied = []
    gated: set = set()
    if gating:
        for segment in plan_power_gating(run.timeline):
            column = segment.column
            windows = list(
                range(segment.start_epoch, segment.end_epoch)
            )
            if not segment.wake and segment.end_epoch == n_epochs \
                    and has_drain:
                windows.append(n_epochs)
            savings = 0.0
            for epoch in windows:
                power = powers[epoch][column]
                time_us = segments[epoch][1] / reference_mhz
                savings += power.total_mw * time_us \
                    - power.leakage_mw * time_us \
                    * GATED_LEAKAGE_FRACTION
            wake_nj = 0.0
            if segment.wake:
                wake_divider = run.timeline[
                    segment.end_epoch
                ].dividers[column]
                wake_nj = transition_model.wake_energy_nj(
                    transition_model.voltage_for(
                        reference_mhz, wake_divider
                    ),
                    run.stats.column(column).n_tiles,
                )
            if savings > wake_nj:
                applied.append((segment, wake_nj))
                gated.update((epoch, column) for epoch in windows)

    ledger = EnergyLedger()
    expected = 0.0
    for index, (dividers, ticks, activity) in enumerate(segments):
        time_us = ticks / reference_mhz
        for column in range(n_columns):
            power = powers[index][column]
            if (index, column) in gated:
                ledger.charge_gated(
                    power, time_us,
                    retained_leakage_fraction=GATED_LEAKAGE_FRACTION,
                )
                expected += power.leakage_mw * time_us \
                    * GATED_LEAKAGE_FRACTION
                continue
            delta = activity[column] if activity is not None else None
            ledger.charge(
                power, time_us,
                busy_fraction=delta.busy_fraction if delta else 0.0,
            )
            expected += power.total_mw * time_us
    for record in run.transitions:
        ledger.charge_transition(record.label, record.energy_nj)
        expected += record.energy_nj
    for segment, wake_nj in applied:
        if segment.wake:
            ledger.charge_transition(
                f"wake col{segment.column} t{segment.end_tick}",
                wake_nj,
            )
            expected += wake_nj
    if expected > 0:
        error = abs(ledger.total_nj - expected) / expected
    else:
        error = abs(ledger.total_nj)
    return ledger, error, tuple(segment for segment, _ in applied)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class PipelineResult:
    """A governed pipeline run with deadlines and energy settled."""

    scenario: PipelineScenario
    governor: str
    run: GovernedRun
    ledger: EnergyLedger
    deadline_misses: int
    produced_samples: tuple
    conservation_error: float
    gate_segments: tuple = ()

    @property
    def energy_nj(self) -> float:
        """Total energy including transition and wake charges."""
        return self.ledger.total_nj

    @property
    def transition_nj(self) -> float:
        """Energy charged to rail transitions and re-wakes."""
        return self.ledger.transition_nj

    @property
    def transition_count(self) -> int:
        """Committed per-column operating-point changes."""
        return self.run.transition_count

    @property
    def gated_nj(self) -> float:
        """Retention energy accrued over gated windows."""
        return self.ledger.gated_nj

    @property
    def gated_time_us(self) -> float:
        """Column-time spent on a gated rail."""
        return self.ledger.gated_time_us

    @property
    def wake_count(self) -> int:
        """Applied gate segments that priced a rail re-wake."""
        return sum(1 for s in self.gate_segments if s.wake)

    @property
    def average_mw(self) -> float:
        """Mean power over the simulated run."""
        time_us = self.run.stats.simulated_time_us
        if time_us <= 0:
            return 0.0
        return self.energy_nj / time_us

    @property
    def idle_fraction(self) -> float:
        """Idle share of tile cycles across all stages and epochs."""
        cycles = sum(
            activity.tile_cycles
            for epoch in self.run.timeline
            for activity in epoch.column_activity
        )
        idle = sum(
            activity.idle
            for epoch in self.run.timeline
            for activity in epoch.column_activity
        )
        return idle / cycles if cycles else 0.0

    def frequency_residency(self, column: int) -> dict:
        """Per-domain frequency residency histogram."""
        return self.run.stats_with_epochs.frequency_residency(column)


def run_pipeline(
    scenario: PipelineScenario,
    governor: Governor | str,
    engine: str = "auto",
    transition_model: TransitionModel | None = None,
    model: PowerModel | None = None,
    max_ticks: int | None = None,
    gating: bool | None = None,
) -> PipelineResult:
    """Run one pipeline scenario under one policy; settle the books.

    ``gating=None`` enables gated-rail accounting exactly when the
    policy is the chip-level coordinator - only the agent that owns
    every domain can safely sequence a rail gate against its
    cross-domain commits; pass an explicit bool to override (the
    gating tests charge an independent run both ways).
    """
    if isinstance(governor, str):
        governor = pipeline_governor(governor, scenario)
    if gating is None:
        gating = isinstance(governor, CoordinatedGovernor)
    chip = scenario.build_chip()
    harness = _PipelineHarness(scenario, chip)
    budget = max_ticks if max_ticks is not None else (
        (scenario.n_frames + 8) * scenario.frame_ticks * 4
    )
    transitions = transition_model or TransitionModel()
    run = run_governed(
        chip,
        governor,
        transition_model=transitions,
        engine=engine,
        epoch_ticks=scenario.epoch_ticks,
        max_ticks=budget,
        before_epoch=harness.before_epoch,
        telemetry_extras=harness.telemetry_extras,
    )
    harness.finish(run)
    if harness.produced != scenario.total_words:
        raise SimulationError(
            f"{scenario.name}: produced {harness.produced} of "
            f"{scenario.total_words} words - the pipeline and trace "
            f"disagree"
        )
    ledger, error, gate_segments = charge_pipeline_ledger(
        scenario, run, model or PowerModel(), transitions,
        gating=gating,
    )
    return PipelineResult(
        scenario=scenario,
        governor=governor.name,
        run=run,
        ledger=ledger,
        deadline_misses=harness.deadline_misses(),
        produced_samples=tuple(harness.samples),
        conservation_error=error,
        gate_segments=gate_segments,
    )
