"""Multi-column governed pipelines for the coordinated evaluation.

The bursty scenarios of :mod:`repro.workloads.dvfs` exercise one
governed column; these scenarios govern whole *pipelines* - the
paper's actual mapping style, where each column is one stage of the
DDC or 802.11a receive chain running at its own rationally related
clock.  A :class:`PipelineScenario` builds an N-column chip (one
streaming worker per stage, horizontal bus moving words stage to
stage) and a rate-varying frame trace; :func:`run_pipeline` drives it
under one of three policies:

* ``static`` - per-stage worst-case provisioning (the paper's
  startup-only schedule applied to every stage);
* ``independent`` - one per-column deadline governor per stage, each
  consuming only the chip-global deadline signal (PR 3's slack
  governor replicated per column, no cross-domain state);
* ``coordinated`` - the chip-level
  :class:`~repro.control.coordinator.CoordinatedGovernor`: per-stage
  slack governors under rate matching, single-boundary commits, and
  power gating of quiescent columns in the energy ledger.

Deadlines are counted at the *end of the pipe* (a frame's words must
all leave the last stage by the next frame boundary), and the energy
ledger charges every (epoch, column) window at its committed
operating point with gated-rail accounting for windows the
coordinator proves quiescent - conservation stays exact including
transition and re-wake charges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from fractions import Fraction

import numpy as np

from repro.arch.chip import Chip, PORT_POSITION
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou_compiler import Transfer, compile_schedule
from repro.control.coordinator import (
    CoordinatedGovernor,
    plan_power_gating,
)
from repro.control.epochs import GovernedRun, run_governed
from repro.control.governor import (
    GOVERNOR_KINDS,
    Governor,
    SlackGovernor,
    StaticGovernor,
    slowest_safe_divider,
)
from repro.control.transitions import TransitionModel
from repro.errors import ConfigurationError, SimulationError
from repro.isa.assembler import assemble
from repro.power.interconnect import CommProfile
from repro.power.measured import EnergyLedger
from repro.power.model import ComponentSpec, PowerModel
from repro.workloads.dvfs import _mcs_loads, energy_segments

__all__ = [
    "IndependentSlackGovernor",
    "PIPELINE_GOVERNORS",
    "PipelineResult",
    "PipelineScenario",
    "PipelineStage",
    "aes_pipeline_scenario",
    "charge_pipeline_ledger",
    "ddc_pipeline_scenario",
    "mpeg4_pipeline_scenario",
    "pipeline_governor",
    "run_pipeline",
    "stereo_pipeline_scenario",
    "wlan_rx_pipeline_scenario",
]

#: Leakage share still drawn by a power-gated rail (retention cells
#: and the gating header); see EnergyLedger.charge_gated.
GATED_LEAKAGE_FRACTION = 0.05


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage: a column's streaming kernel shape.

    A stage *firing* consumes ``words_in`` words, performs
    ``work_per_word`` unrolled compute instructions, and produces
    ``words_out`` words, costing ``words_in + work_per_word +
    words_out`` tile cycles.  The default 1:1 shape reproduces the
    original streaming worker (RECV + work + SEND per word); a
    decimating stage (a CIC, an entropy coder) sets ``words_in >
    words_out`` and an expanding stage (a demapper) the reverse -
    the non-1:1 word-rate ratios dataflow rate matching is about.

    ``cycles_per_word`` - tile cycles per *input* word - stays the
    rate currency every provisioning and matching rule uses.
    """

    name: str
    work_per_word: int
    words_in: int = 1
    words_out: int = 1

    def __post_init__(self) -> None:
        if self.work_per_word < 1:
            raise ConfigurationError(
                f"stage {self.name}: work_per_word must be positive"
            )
        if self.words_in < 1:
            raise ConfigurationError(
                f"stage {self.name}: words_in must be positive, got "
                f"{self.words_in}"
            )
        if self.words_out < 1:
            raise ConfigurationError(
                f"stage {self.name}: words_out must be positive, got "
                f"{self.words_out}"
            )

    @property
    def cycles_per_firing(self) -> int:
        """Tile cycles one firing costs (RECVs + work + SENDs)."""
        return self.words_in + self.work_per_word + self.words_out

    @property
    def cycles_per_word(self) -> float:
        """Tile cycles one *input* word costs.

        Exactly ``work_per_word + 2`` for the 1:1 default - the
        original rate currency - and the amortized per-word share of
        a firing otherwise.
        """
        return self.cycles_per_firing / self.words_in

    @property
    def rate_ratio(self) -> Fraction:
        """Output words produced per input word consumed."""
        return Fraction(self.words_out, self.words_in)


@dataclass(frozen=True)
class PipelineScenario:
    """A rate-varying workload on an N-stage column pipeline graph.

    Frame ``i`` arrives at the first stage at tick
    ``i * frame_ticks``; its words must have left the *last* stage by
    ``(i + 1) * frame_ticks``.  Words flow stage to stage over the
    horizontal bus (one round-robin DOU cycle per producing stage),
    through the voltage-adapting inter-column ports whose occupancy
    the governors watch.  ``epoch_ticks`` must divide ``frame_ticks``
    and be a multiple of every ladder divider so deadlines and
    commits land on control boundaries.

    ``predecessors`` describes the stage graph: per stage, the
    indices of its producers (default the linear chain).  Stage 0 is
    the single external head, the last stage the single sink the
    deadline is counted at.  A *fork* is several stages naming one
    producer - the producer's output is broadcast, each consumer sees
    the full stream (one DOU cycle drives both branch ports).  A
    *join* names several producers; its single input port interleaves
    the branches' words deterministically and a firing consumes
    ``words_in`` of them, so matched branches must deliver equal word
    counts (validated).  Combined with per-stage ``words_in`` /
    ``words_out`` ratios this gives the non-1:1 (decimating /
    expanding) and fork/join topologies of dataflow rate matching.
    """

    name: str
    key: str
    frame_loads: tuple
    stages: tuple
    frame_ticks: int = 2048
    reference_mhz: float = 512.0
    divider_ladder: tuple = (1, 2, 4, 8)
    epoch_ticks: int = 512
    provision_guard: float = 1.3
    coordination_guard: float = 1.25
    port_capacity: int = 512
    predecessors: tuple | None = None
    #: Reference ticks the harness subtracts from the published
    #: deadline window.  The per-stage rate decomposition assumes the
    #: stages work concurrently, which the *last* words of a frame
    #: violate - they traverse the stages serially - so deep or
    #: slow-ladder pipelines reserve their serial drain time here.
    #: Zero (the default) reproduces the undiminished window.
    drain_allowance_ticks: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "frame_loads", tuple(int(v) for v in self.frame_loads)
        )
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(
            self, "divider_ladder",
            tuple(sorted(self.divider_ladder)),
        )
        if len(self.stages) < 2:
            raise ConfigurationError(
                f"{self.name}: a pipeline needs at least two stages"
            )
        for stage in self.stages:
            if not isinstance(stage, PipelineStage):
                raise ConfigurationError(
                    f"{self.name}: stages must be PipelineStage "
                    f"instances"
                )
        if self.predecessors is not None:
            object.__setattr__(
                self, "predecessors",
                tuple(
                    tuple(int(p) for p in preds)
                    for preds in self.predecessors
                ),
            )
        self._validate_graph()
        if not self.frame_loads:
            raise ConfigurationError(f"{self.name}: no frames")
        if min(self.frame_loads) < 1:
            raise ConfigurationError(
                f"{self.name}: every frame needs at least one word"
            )
        quantum = self.load_quantum
        for index, load in enumerate(self.frame_loads):
            if load % quantum != 0:
                raise ConfigurationError(
                    f"{self.name}: frame {index} carries {load} "
                    f"words, not a multiple of the load quantum "
                    f"{quantum} the stage rate ratios require (every "
                    f"stage must fire whole firings per frame)"
                )
        for divider in self.divider_ladder:
            if self.frame_ticks % divider != 0 \
                    or self.epoch_ticks % divider != 0:
                raise ConfigurationError(
                    f"{self.name}: frame and epoch ticks must be "
                    f"multiples of ladder divider {divider}"
                )
        if self.frame_ticks % self.epoch_ticks != 0:
            raise ConfigurationError(
                f"{self.name}: epoch_ticks must divide frame_ticks "
                f"so deadlines land on control boundaries"
            )
        if not 0 <= self.drain_allowance_ticks < self.frame_ticks:
            raise ConfigurationError(
                f"{self.name}: drain_allowance_ticks "
                f"{self.drain_allowance_ticks} must lie in "
                f"[0, frame_ticks)"
            )

    def _validate_graph(self) -> None:
        """Check the stage graph is a single-head, single-sink DAG."""
        preds = self.stage_predecessors
        if len(preds) != len(self.stages):
            raise ConfigurationError(
                f"{self.name}: {len(self.stages)} stages but "
                f"{len(preds)} predecessor entries"
            )
        if preds[0]:
            raise ConfigurationError(
                f"{self.name}: stage 0 is the external head and "
                f"cannot list predecessors (got {preds[0]})"
            )
        for stage in range(1, len(self.stages)):
            entry = preds[stage]
            if not entry:
                raise ConfigurationError(
                    f"{self.name}: stage {stage} "
                    f"({self.stages[stage].name}) has no producer - "
                    f"only stage 0 takes external input"
                )
            if len(set(entry)) != len(entry):
                raise ConfigurationError(
                    f"{self.name}: stage {stage} lists a duplicate "
                    f"producer in {entry}"
                )
            for pred in entry:
                if not 0 <= pred < stage:
                    raise ConfigurationError(
                        f"{self.name}: stage {stage} lists producer "
                        f"{pred}; producers must be earlier stages "
                        f"(topological order)"
                    )
        successors = self.stage_successors
        for stage in range(len(self.stages) - 1):
            if not successors[stage]:
                raise ConfigurationError(
                    f"{self.name}: stage {stage} "
                    f"({self.stages[stage].name}) has no consumer - "
                    f"only the last stage may sink the stream"
                )
        if successors[-1]:
            raise ConfigurationError(
                f"{self.name}: the last stage is the pipeline sink "
                f"and cannot feed {successors[-1]}"
            )
        scales = self.input_scales
        for stage, entry in enumerate(preds):
            if len(entry) <= 1:
                continue
            rates = {
                pred: scales[pred] * self.stages[pred].rate_ratio
                for pred in entry
            }
            if len(set(rates.values())) != 1:
                raise ConfigurationError(
                    f"{self.name}: join stage {stage} "
                    f"({self.stages[stage].name}) mixes branches with "
                    f"unequal word rates {dict(rates)} - matched "
                    f"branches must deliver equal word counts per "
                    f"head word"
                )

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """Pipeline depth (columns on the chip)."""
        return len(self.stages)

    @property
    def n_frames(self) -> int:
        """Frames in the trace."""
        return len(self.frame_loads)

    @property
    def total_words(self) -> int:
        """Words across the whole trace (at the pipeline head)."""
        return sum(self.frame_loads)

    @property
    def peak_words(self) -> int:
        """The heaviest frame - what static provisioning sizes for."""
        return max(self.frame_loads)

    @property
    def stage_cycles(self) -> tuple:
        """Per-stage tile cycles per input word, pipeline order."""
        return tuple(s.cycles_per_word for s in self.stages)

    @property
    def stage_predecessors(self) -> tuple:
        """Per-stage producer indices (linear chain by default)."""
        if self.predecessors is not None:
            return self.predecessors
        return ((),) + tuple(
            (stage - 1,) for stage in range(1, self.n_stages)
        )

    @property
    def stage_successors(self) -> tuple:
        """Per-stage consumer indices, derived from the producers."""
        successors = [[] for _ in self.stages]
        for stage, preds in enumerate(self.stage_predecessors):
            for pred in preds:
                successors[pred].append(stage)
        return tuple(tuple(entry) for entry in successors)

    @property
    def is_linear(self) -> bool:
        """Whether the stage graph is the plain chain."""
        return all(
            len(preds) <= 1 for preds in self.stage_predecessors
        ) and all(
            len(succs) <= 1 for succs in self.stage_successors
        )

    # ------------------------------------------------------------------
    # word-flow scales
    # ------------------------------------------------------------------
    @property
    def input_scales(self) -> tuple:
        """Words arriving at each stage per external head word.

        Exact :class:`~fractions.Fraction` values: the head sees 1;
        every other stage sums its producers' output scales (a fork
        broadcasts, so each branch sees the producer's full output; a
        join's port receives every branch's words).
        """
        scales = []
        for stage, preds in enumerate(self.stage_predecessors):
            if not preds:
                scales.append(Fraction(1))
                continue
            scales.append(sum(
                scales[pred] * self.stages[pred].rate_ratio
                for pred in preds
            ))
        return tuple(scales)

    @property
    def output_scales(self) -> tuple:
        """Words each stage produces per external head word."""
        return tuple(
            scale * stage.rate_ratio
            for scale, stage in zip(self.input_scales, self.stages)
        )

    @property
    def exit_scale(self) -> Fraction:
        """Words leaving the pipe per external head word."""
        return self.output_scales[-1]

    @property
    def load_quantum(self) -> int:
        """Smallest frame load every stage can consume in whole firings.

        Every frame load must be a multiple of this: frame ``k``
        delivers ``load * input_scales[i]`` words to stage ``i``,
        which must be an integral number of ``words_in`` firings so
        no partial firing straddles a deadline.  The quantum is the
        LCM of the per-stage denominators of ``input_scale /
        words_in``; 1 for any all-1:1 pipeline.
        """
        quantum = 1
        for scale, stage in zip(self.input_scales, self.stages):
            denominator = (scale / stage.words_in).denominator
            quantum = quantum * denominator \
                // np.gcd(quantum, denominator)
        return int(quantum)

    @property
    def stage_firings(self) -> tuple:
        """Firings each stage executes over the whole trace."""
        return tuple(
            int(self.total_words * scale / stage.words_in)
            for scale, stage in zip(self.input_scales, self.stages)
        )

    @property
    def total_exit_words(self) -> int:
        """Words the whole trace produces at the pipeline exit."""
        return int(self.total_words * self.exit_scale)

    # ------------------------------------------------------------------
    # provisioning
    # ------------------------------------------------------------------
    def static_dividers(self) -> tuple:
        """Per-stage worst-case provisioning (startup-only clocking).

        Each stage independently takes the slowest ladder rung that
        still processes the *peak* frame inside one frame period with
        the provisioning guard - exactly the paper's per-column rate
        matching, applied to the worst case because a static schedule
        cannot revisit the choice.  The peak load is scaled into each
        stage's own input words first, so a stage behind a decimator
        provisions for the decimated stream, not the head rate.
        """
        dividers = []
        for index, stage in enumerate(self.stages):
            stage_peak = int(self.peak_words * self.input_scales[index])
            divider = slowest_safe_divider(
                self.divider_ladder, self.frame_ticks, stage_peak,
                stage.cycles_per_word, self.provision_guard,
            )
            if divider is None:
                raise ConfigurationError(
                    f"{self.name}: stage {stage.name} cannot sustain "
                    f"the peak frame of {stage_peak} words even "
                    f"at divider {self.divider_ladder[0]}"
                )
            dividers.append(divider)
        return tuple(dividers)

    # ------------------------------------------------------------------
    # chip construction
    # ------------------------------------------------------------------
    def build_chip(self, dividers: tuple | None = None) -> Chip:
        """An N-column streaming pipeline chip for this scenario."""
        start = tuple(dividers) if dividers is not None \
            else self.static_dividers()
        if len(start) != self.n_stages:
            raise ConfigurationError(
                f"{self.name}: {self.n_stages} stages but "
                f"{len(start)} start dividers"
            )
        firings = self.stage_firings
        programs = []
        dou_programs = []
        for index, stage in enumerate(self.stages):
            recvs = "\n".join(
                "  recv r1" for _ in range(stage.words_in)
            )
            work = "\n".join(
                "  addi r2, r2, 1"
                for _ in range(stage.work_per_word)
            )
            sends = "\n".join(
                "  send r1" for _ in range(stage.words_out)
            )
            programs.append(assemble(f"""
                tmask 0x1            ; tile 0 is the stage worker
                movi r2, 0
                loop {firings[index]}
{recvs}
{work}
{sends}
                endloop
                halt
            """, f"{self.key}-{stage.name}"))
            dou_programs.append(compile_schedule(
                [
                    [Transfer(src=PORT_POSITION, dsts=(0,))],
                    [Transfer(src=0, dsts=(PORT_POSITION,))],
                ],
                name=f"{self.key}-{stage.name}-stream",
            ))
        successors = self.stage_successors
        # One round-robin cycle per *producing* stage; a fork's single
        # transfer broadcasts the word into every branch port.
        horizontal = compile_schedule(
            [
                [Transfer(src=index, dsts=successors[index])]
                for index in range(self.n_stages)
                if successors[index]
            ],
            n_positions=self.n_stages,
            name=f"{self.key}-hbus",
        )
        config = ChipConfig(
            reference_mhz=self.reference_mhz,
            columns=tuple(
                ColumnConfig(divider=d) for d in start
            ),
            port_capacity=self.port_capacity,
            strict_schedules=False,
        )
        return Chip(
            config,
            programs=programs,
            dou_programs=dou_programs,
            horizontal_dou=horizontal,
        )


# ----------------------------------------------------------------------
# scenario factories
# ----------------------------------------------------------------------
def _band_loads(frames: int, seed: int) -> tuple:
    """A DDC channel-bandwidth trace: sticky rate with reconfigs."""
    rng = np.random.default_rng(seed)
    levels = (16, 32, 64, 96)  # narrowband .. full-rate words/frame
    level = 1
    loads = []
    for _ in range(frames):
        if rng.random() > 0.7:  # carrier/bandwidth reconfiguration
            step = 1 if rng.random() < 0.5 else -1
            level = min(len(levels) - 1, max(0, level + step))
        loads.append(levels[level])
    # Exercise the worst case at least once.
    loads[int(rng.integers(frames // 2, frames))] = levels[-1]
    return tuple(loads)


def ddc_pipeline_scenario(
    frames: int = 20, seed: int = 5
) -> PipelineScenario:
    """The DDC front end, governed end to end.

    Four stages mirror the Section 2 mapping - NCO/mixer, CIC
    decimator, compensation FIR, and gain stage - with per-word costs
    chosen so the static schedule must spread the pipeline across
    four different rungs (the paper's rational-clocking claim made
    dynamic).
    """
    return PipelineScenario(
        name="DDC pipeline (governed end to end)",
        key="ddc_pipeline",
        frame_loads=_band_loads(frames, seed),
        stages=(
            PipelineStage("mixer", work_per_word=2),
            PipelineStage("cic", work_per_word=8),
            PipelineStage("fir", work_per_word=4),
            PipelineStage("gain", work_per_word=1),
        ),
    )


def wlan_rx_pipeline_scenario(
    frames: int = 20, seed: int = 7
) -> PipelineScenario:
    """An 802.11a receive chain under runtime MCS changes.

    Three stages - FFT, demapper, Viterbi - share the WLAN
    variable-MCS frame trace of the single-column evaluation, so the
    coordinated results are directly comparable with PR 3's.
    """
    return PipelineScenario(
        name="WLAN variable-MCS receiver pipeline",
        key="wlan_rx_pipeline",
        frame_loads=_mcs_loads(frames, seed),
        stages=(
            PipelineStage("fft", work_per_word=4),
            PipelineStage("demap", work_per_word=2),
            PipelineStage("viterbi", work_per_word=6),
        ),
    )


def _packet_loads(frames: int, seed: int) -> tuple:
    """An AES link trace: idle beacons with encrypted data bursts."""
    rng = np.random.default_rng(seed)
    loads = []
    for _ in range(frames):
        if rng.random() < 0.35:  # data burst
            loads.append(int(rng.integers(10, 16)) * 8)
        else:  # beacon / keep-alive traffic
            loads.append(int(rng.integers(2, 5)) * 8)
    # Exercise the worst case at least once.
    loads[int(rng.integers(frames // 2, frames))] = 128
    return tuple(loads)


def aes_pipeline_scenario(
    frames: int = 20, seed: int = 11
) -> PipelineScenario:
    """AES link encryption as a governed four-stage pipeline.

    Key mix, SubBytes, the round core, and serialization stream one
    block per word; the round core dominates per-word cost, so the
    static schedule must hold its column fast while the governors let
    the light stages idle down between packet bursts.
    """
    return PipelineScenario(
        name="AES link-encryption pipeline",
        key="aes_pipeline",
        frame_loads=_packet_loads(frames, seed),
        stages=(
            PipelineStage("keymix", work_per_word=2),
            PipelineStage("sbox", work_per_word=5),
            PipelineStage("rounds", work_per_word=9),
            PipelineStage("serialize", work_per_word=1),
        ),
    )


def _motion_loads(frames: int, seed: int) -> tuple:
    """An MPEG-4 macroblock trace: scene-dependent, in eights.

    Loads are multiples of 8 because the encoder pipeline's entropy
    tail consumes the quantizer's 2:1-decimated stream four words per
    firing - the load quantum the scenario validates.
    """
    rng = np.random.default_rng(seed)
    levels = (16, 32, 64, 96)  # still scene .. full motion
    level = 1
    loads = []
    for _ in range(frames):
        if rng.random() > 0.65:  # scene change / motion burst
            step = 1 if rng.random() < 0.55 else -1
            level = min(len(levels) - 1, max(0, level + step))
        loads.append(levels[level])
    loads[int(rng.integers(frames // 2, frames))] = levels[-1]
    return tuple(loads)


def mpeg4_pipeline_scenario(
    frames: int = 20, seed: int = 13
) -> PipelineScenario:
    """The MPEG-4 encoder tail with non-1:1 word-rate ratios.

    DCT feeds a 2:1 decimating quantizer (two coefficients in, one
    significant value out) which feeds a 4:1 entropy packer - the
    decimating-pipeline shape of dataflow rate matching, where each
    stage's deadline-safe rung follows its *own* decimated word rate,
    an eighth of the head rate at the tail.
    """
    return PipelineScenario(
        name="MPEG-4 encoder tail (2:1 and 4:1 decimation)",
        key="mpeg4_pipeline",
        frame_loads=_motion_loads(frames, seed),
        stages=(
            PipelineStage("dct", work_per_word=4),
            PipelineStage(
                "quant", work_per_word=5, words_in=2, words_out=1
            ),
            PipelineStage(
                "entropy", work_per_word=11, words_in=4, words_out=1
            ),
        ),
    )


def _audio_loads(frames: int, seed: int) -> tuple:
    """A stereo audio trace: sample-rate switches with level bursts."""
    rng = np.random.default_rng(seed)
    levels = (16, 32, 48, 96)  # low-rate .. hi-res words/frame
    level = 1
    loads = []
    for _ in range(frames):
        if rng.random() > 0.55:  # sample-rate / codec switch
            step = 1 if rng.random() < 0.5 else -1
            level = min(len(levels) - 1, max(0, level + step))
        loads.append(levels[level])
    loads[int(rng.integers(frames // 2, frames))] = levels[-1]
    return tuple(loads)


def stereo_pipeline_scenario(
    frames: int = 20, seed: int = 17
) -> PipelineScenario:
    """Stereo effects processing as a fork/join diamond.

    A splitter broadcasts each sample to the left and right channel
    filters (a fork: both branches see the full stream), and the
    downmix join consumes one word from each branch per output sample
    - the join's availability follows the slower branch, which the
    asymmetric per-channel filter costs make a real constraint.
    """
    return PipelineScenario(
        name="Stereo effects fork/join pipeline",
        key="stereo_pipeline",
        frame_loads=_audio_loads(frames, seed),
        stages=(
            PipelineStage("split", work_per_word=1),
            PipelineStage("left_fx", work_per_word=6),
            PipelineStage("right_fx", work_per_word=3),
            PipelineStage(
                "downmix", work_per_word=4, words_in=2, words_out=1
            ),
        ),
        predecessors=((), (0,), (0,), (1, 2)),
    )


# ----------------------------------------------------------------------
# governors
# ----------------------------------------------------------------------
#: Policy names run_pipeline accepts (the evaluation compares all).
PIPELINE_GOVERNORS = ("static", "independent", "coordinated")


class IndependentSlackGovernor(Governor):
    """Per-column deadline governors with no cross-domain state.

    The uncoordinated middle ground the evaluation compares against:
    every stage runs PR 3's :class:`SlackGovernor` on the *chip-global*
    deadline signal (due words not yet out of the pipe) with its own
    per-word cost.  Each stage therefore provisions as if it alone had
    to clear the whole remaining backlog - deadline-safe, but blind to
    how much of that work other stages have already retired, to what
    its producer can actually deliver, and to any gating opportunity;
    exactly the information the chip-level coordinator adds.
    """

    name = "independent"

    def __init__(
        self,
        ladder,
        cycles_per_word,
        guard: float = 1.25,
        word_scales=None,
    ) -> None:
        self.cycles_per_word = tuple(float(c) for c in cycles_per_word)
        if not self.cycles_per_word:
            raise ConfigurationError(
                "cycles_per_word needs at least one stage"
            )
        if word_scales is None:
            word_scales = (1.0,) * len(self.cycles_per_word)
        self.word_scales = tuple(float(s) for s in word_scales)
        if len(self.word_scales) != len(self.cycles_per_word):
            raise ConfigurationError(
                f"{len(self.cycles_per_word)} stages but "
                f"{len(self.word_scales)} word scales"
            )
        for stage, scale in enumerate(self.word_scales):
            if scale <= 0:
                raise ConfigurationError(
                    f"word scale for stage {stage} must be positive, "
                    f"got {scale}"
                )
        self.governors = [
            SlackGovernor(ladder, columns=(i,), guard=guard)
            for i in range(len(self.cycles_per_word))
        ]

    def reset(self) -> None:
        for governor in self.governors:
            governor.reset()

    def decide(self, telemetry) -> tuple:
        dividers = list(telemetry.dividers)
        for stage, governor in enumerate(self.governors):
            if telemetry.halted[stage]:
                continue
            extras = dict(telemetry.extras)
            # Only the stage's own per-word cost and static rate scale
            # are local knowledge; the words owed stay chip-global (no
            # per-stage progress sharing between independent
            # controllers).  The scale converts the chip-global exit
            # words into the stage's own input words - a decimator's
            # upstream owes more words than leave the pipe - rounded
            # up so the conversion can only speed a stage up.
            extras.pop("stage_words_to_deadline", None)
            extras["cycles_per_word"] = self.cycles_per_word[stage]
            words = extras.get("words_to_deadline")
            scale = self.word_scales[stage]
            if words is not None and scale != 1.0:
                extras["words_to_deadline"] = int(
                    math.ceil(words * scale)
                )
            view = replace(telemetry, extras=extras)
            dividers[stage] = governor.decide(view)[stage]
        return tuple(dividers)


GOVERNOR_KINDS[IndependentSlackGovernor.name] = IndependentSlackGovernor


def pipeline_governor(
    kind: str, scenario: PipelineScenario
) -> Governor:
    """Construct one of the evaluated pipeline policies.

    Raises
    ------
    ConfigurationError
        For names outside :data:`PIPELINE_GOVERNORS`, with the valid
        choices listed.
    """
    if kind == "static":
        return StaticGovernor(scenario.static_dividers())
    if kind == "independent":
        return IndependentSlackGovernor(
            scenario.divider_ladder,
            scenario.stage_cycles,
            guard=scenario.coordination_guard,
            word_scales=tuple(
                float(scale / scenario.exit_scale)
                for scale in scenario.input_scales
            ),
        )
    if kind == "coordinated":
        return CoordinatedGovernor(
            scenario.divider_ladder,
            scenario.stage_cycles,
            guard=scenario.coordination_guard,
            rate_ratios=tuple(
                float(stage.rate_ratio) for stage in scenario.stages
            ),
            predecessors=scenario.stage_predecessors,
        )
    raise ConfigurationError(
        f"{scenario.key}: unknown pipeline governor {kind!r}; valid: "
        f"{sorted(PIPELINE_GOVERNORS)}"
    )


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
class _PipelineHarness:
    """Feeds the head stage, drains the tail, publishes deadlines."""

    def __init__(
        self, scenario: PipelineScenario, chip: Chip
    ) -> None:
        self.scenario = scenario
        self.chip = chip
        self.fed_frames = 0
        self.produced = 0
        self.samples: list = []

    def before_epoch(self, chip: Chip, epoch: int) -> None:
        tick = chip.reference_ticks
        tail = chip.columns[-1]
        while not tail.h_out.is_empty:
            tail.h_out.pop()
            self.produced += 1
        scenario = self.scenario
        while self.fed_frames < scenario.n_frames \
                and self.fed_frames * scenario.frame_ticks <= tick:
            words = scenario.frame_loads[self.fed_frames]
            head = chip.columns[0]
            if len(head.h_in) + words > head.h_in.capacity:
                raise SimulationError(
                    f"{scenario.name}: head-stage port overflow at "
                    f"tick {tick} - raise port_capacity or fix the "
                    f"governor"
                )
            chip.feed_column(0, [1 + (w % 97) for w in range(words)])
            self.fed_frames += 1
        self.samples.append((tick, self.produced))

    def _due_words(self, tick: int) -> tuple:
        """Due head words, the same in exit words, next deadline."""
        scenario = self.scenario
        arrived = min(
            scenario.n_frames - 1, tick // scenario.frame_ticks
        )
        due_head = sum(scenario.frame_loads[:arrived + 1])
        due_exit = int(due_head * scenario.exit_scale)
        next_deadline = (arrived + 1) * scenario.frame_ticks
        return due_head, due_exit, next_deadline

    def telemetry_extras(self, chip: Chip, epoch: int) -> dict:
        """Chip-level deadline signals, end-of-pipe and per-stage.

        ``stage_words_to_deadline[i]`` subtracts from the words due at
        stage ``i`` (the due head words scaled into the stage's own
        input units) everything already *past* the stage: the words
        produced at the pipe exit, the stage's own output queue, and
        every word queued along the stage's primary downstream path -
        all converted into stage-``i`` input units through the exact
        word-flow scales, and floored so rounding can only make a
        governor run *faster*.  On a fork only the primary branch's
        queues are credited (a word still owed on the other branch is
        not past the fork), which again errs fast, never slow.
        """
        scenario = self.scenario
        tick = chip.reference_ticks
        due_head, due_exit, next_deadline = self._due_words(tick)
        columns = chip.columns
        scales = scenario.input_scales
        out_scales = scenario.output_scales
        successors = scenario.stage_successors
        stage_words = []
        for index in range(scenario.n_stages):
            scale = scales[index]
            past = self.produced * scale / scenario.exit_scale
            past += len(columns[index].h_out) \
                * scale / out_scales[index]
            walk = index
            while successors[walk]:
                walk = successors[walk][0]
                # A join's input queue interleaves branch words a
                # branch stage cannot attribute, so it earns no
                # credit: counting an averaged share would let a
                # lagging branch claim the *other* branch's progress.
                if len(scenario.stage_predecessors[walk]) == 1:
                    past += len(columns[walk].h_in) \
                        * scale / scales[walk]
                past += len(columns[walk].h_out) \
                    * scale / out_scales[walk]
            due_stage = int(due_head * scale)
            stage_words.append(max(0, due_stage - int(past)))
        window = next_deadline - tick \
            - scenario.drain_allowance_ticks
        return {
            "words_to_deadline": max(0, due_exit - self.produced),
            "ticks_to_deadline": max(1, window),
            "cycles_per_word": float(max(scenario.stage_cycles)),
            "stage_words_to_deadline": tuple(stage_words),
            "stage_cycles_per_word": tuple(
                float(c) for c in scenario.stage_cycles
            ),
        }

    def finish(self, run: GovernedRun) -> None:
        """Credit words that only left during the post-halt drain."""
        tail = self.chip.columns[-1]
        while not tail.h_out.is_empty:
            tail.h_out.pop()
            self.produced += 1
        self.samples.append(
            (run.stats.reference_ticks, self.produced)
        )

    def deadline_misses(self) -> int:
        """Frames whose words had not all left the pipe in time."""
        scenario = self.scenario
        misses = 0
        due_head = 0
        for index, words in enumerate(scenario.frame_loads):
            due_head += words
            due = int(due_head * scenario.exit_scale)
            deadline = (index + 1) * scenario.frame_ticks
            produced_by_deadline = 0
            for tick, produced in self.samples:
                if tick <= deadline:
                    produced_by_deadline = max(
                        produced_by_deadline, produced
                    )
            if produced_by_deadline < due:
                misses += 1
        return misses


# ----------------------------------------------------------------------
# energy accounting with power gating
# ----------------------------------------------------------------------
def charge_pipeline_ledger(
    scenario: PipelineScenario,
    run: GovernedRun,
    model: PowerModel,
    transition_model: TransitionModel,
    gating: bool = True,
) -> tuple:
    """Ledger over the pipeline timeline, with gated-rail windows.

    Every (epoch, column) window is charged at that epoch's committed
    operating point with the window's measured busy split, exactly as
    the single-column charger does; additionally, when ``gating`` is
    on, the coordinator's gate plan
    (:func:`~repro.control.coordinator.plan_power_gating`) marks fully
    quiescent windows, and each candidate segment is gated only if the
    retention savings beat its re-wake rail charge - the break-even
    rule that keeps gating from thrashing on short idles.  Gated
    windows charge at the gated rate (retention leakage only); a
    wake-free tail segment's gate extends through the post-halt drain
    window (that rail is off for good); every applied wake prices
    ``1/2 C_rail V^2`` through
    :meth:`~repro.control.transitions.TransitionModel.wake_energy_nj`.

    Returns ``(ledger, conservation_error, applied_gate_segments)``;
    the error re-accumulates the expected energy alongside the ledger
    (power x time over ungated windows, retention energy over gated
    ones, plus every transition and wake charge), so conservation
    stays exact by construction and any term-splitting bug raises the
    relative error above the asserted tolerance.
    """
    segments = energy_segments(run, scenario.name)
    reference_mhz = scenario.reference_mhz
    n_columns = scenario.n_stages

    # Evaluate every (segment, column) operating point once.
    powers = []
    for index, (dividers, ticks, activity) in enumerate(segments):
        row = []
        for column in range(n_columns):
            delta = activity[column] if activity is not None else None
            spec = ComponentSpec(
                name=f"seg{index}.col{column}",
                n_tiles=run.stats.column(column).n_tiles,
                frequency_mhz=reference_mhz / dividers[column],
                comm=CommProfile(
                    words_per_cycle=(
                        delta.words_per_cycle if delta else 0.0
                    ),
                ),
            )
            row.append(model.component_power(spec))
        powers.append(row)

    # Decide which candidate gate segments pay for themselves.  A
    # wake-free tail segment powers its column off for good, so its
    # gate extends through the post-halt drain segment too - the
    # drain window must not be charged ungated for a rail the
    # coordinator declared permanently off.
    n_epochs = len(run.timeline)
    has_drain = len(segments) == n_epochs + 1
    applied = []
    gated: set = set()
    if gating:
        for segment in plan_power_gating(run.timeline):
            column = segment.column
            windows = list(
                range(segment.start_epoch, segment.end_epoch)
            )
            if not segment.wake and segment.end_epoch == n_epochs \
                    and has_drain:
                windows.append(n_epochs)
            savings = 0.0
            for epoch in windows:
                power = powers[epoch][column]
                time_us = segments[epoch][1] / reference_mhz
                savings += power.total_mw * time_us \
                    - power.leakage_mw * time_us \
                    * GATED_LEAKAGE_FRACTION
            wake_nj = 0.0
            if segment.wake:
                wake_divider = run.timeline[
                    segment.end_epoch
                ].dividers[column]
                wake_nj = transition_model.wake_energy_nj(
                    transition_model.voltage_for(
                        reference_mhz, wake_divider
                    ),
                    run.stats.column(column).n_tiles,
                )
            if savings > wake_nj:
                applied.append((segment, wake_nj))
                gated.update((epoch, column) for epoch in windows)

    ledger = EnergyLedger()
    expected = 0.0
    for index, (dividers, ticks, activity) in enumerate(segments):
        time_us = ticks / reference_mhz
        for column in range(n_columns):
            power = powers[index][column]
            if (index, column) in gated:
                ledger.charge_gated(
                    power, time_us,
                    retained_leakage_fraction=GATED_LEAKAGE_FRACTION,
                )
                expected += power.leakage_mw * time_us \
                    * GATED_LEAKAGE_FRACTION
                continue
            delta = activity[column] if activity is not None else None
            ledger.charge(
                power, time_us,
                busy_fraction=delta.busy_fraction if delta else 0.0,
            )
            expected += power.total_mw * time_us
    for record in run.transitions:
        ledger.charge_transition(record.label, record.energy_nj)
        expected += record.energy_nj
    for segment, wake_nj in applied:
        if segment.wake:
            ledger.charge_transition(
                f"wake col{segment.column} t{segment.end_tick}",
                wake_nj,
            )
            expected += wake_nj
    if expected > 0:
        error = abs(ledger.total_nj - expected) / expected
    else:
        error = abs(ledger.total_nj)
    return ledger, error, tuple(segment for segment, _ in applied)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class PipelineResult:
    """A governed pipeline run with deadlines and energy settled."""

    scenario: PipelineScenario
    governor: str
    run: GovernedRun
    ledger: EnergyLedger
    deadline_misses: int
    produced_samples: tuple
    conservation_error: float
    gate_segments: tuple = ()

    @property
    def energy_nj(self) -> float:
        """Total energy including transition and wake charges."""
        return self.ledger.total_nj

    @property
    def transition_nj(self) -> float:
        """Energy charged to rail transitions and re-wakes."""
        return self.ledger.transition_nj

    @property
    def transition_count(self) -> int:
        """Committed per-column operating-point changes."""
        return self.run.transition_count

    @property
    def gated_nj(self) -> float:
        """Retention energy accrued over gated windows."""
        return self.ledger.gated_nj

    @property
    def gated_time_us(self) -> float:
        """Column-time spent on a gated rail."""
        return self.ledger.gated_time_us

    @property
    def wake_count(self) -> int:
        """Applied gate segments that priced a rail re-wake."""
        return sum(1 for s in self.gate_segments if s.wake)

    @property
    def average_mw(self) -> float:
        """Mean power over the simulated run."""
        time_us = self.run.stats.simulated_time_us
        if time_us <= 0:
            return 0.0
        return self.energy_nj / time_us

    @property
    def idle_fraction(self) -> float:
        """Idle share of tile cycles across all stages and epochs."""
        cycles = sum(
            activity.tile_cycles
            for epoch in self.run.timeline
            for activity in epoch.column_activity
        )
        idle = sum(
            activity.idle
            for epoch in self.run.timeline
            for activity in epoch.column_activity
        )
        return idle / cycles if cycles else 0.0

    def frequency_residency(self, column: int) -> dict:
        """Per-domain frequency residency histogram."""
        return self.run.stats_with_epochs.frequency_residency(column)


def run_pipeline(
    scenario: PipelineScenario,
    governor: Governor | str,
    engine: str = "auto",
    transition_model: TransitionModel | None = None,
    model: PowerModel | None = None,
    max_ticks: int | None = None,
    gating: bool | None = None,
) -> PipelineResult:
    """Run one pipeline scenario under one policy; settle the books.

    ``gating=None`` enables gated-rail accounting exactly when the
    policy is the chip-level coordinator - only the agent that owns
    every domain can safely sequence a rail gate against its
    cross-domain commits; pass an explicit bool to override (the
    gating tests charge an independent run both ways).
    """
    if isinstance(governor, str):
        governor = pipeline_governor(governor, scenario)
    if gating is None:
        gating = isinstance(governor, CoordinatedGovernor)
    chip = scenario.build_chip()
    harness = _PipelineHarness(scenario, chip)
    budget = max_ticks if max_ticks is not None else (
        (scenario.n_frames + 8) * scenario.frame_ticks * 4
    )
    transitions = transition_model or TransitionModel()
    run = run_governed(
        chip,
        governor,
        transition_model=transitions,
        engine=engine,
        epoch_ticks=scenario.epoch_ticks,
        max_ticks=budget,
        before_epoch=harness.before_epoch,
        telemetry_extras=harness.telemetry_extras,
    )
    harness.finish(run)
    if harness.produced != scenario.total_exit_words:
        raise SimulationError(
            f"{scenario.name}: produced {harness.produced} of "
            f"{scenario.total_exit_words} exit words - the pipeline "
            f"and trace disagree"
        )
    ledger, error, gate_segments = charge_pipeline_ledger(
        scenario, run, model or PowerModel(), transitions,
        gating=gating,
    )
    return PipelineResult(
        scenario=scenario,
        governor=governor.name,
        run=run,
        ledger=ledger,
        deadline_misses=harness.deadline_misses(),
        produced_samples=tuple(harness.samples),
        conservation_error=error,
        gate_segments=gate_segments,
    )
