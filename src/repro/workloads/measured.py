"""Bridge measured kernel runs into the power methodology.

The Table 4 communication profiles in :mod:`repro.workloads.configs`
are calibrated analytically; this module derives the same quantities
from cycle-level simulation (Section 4.1 steps 5-6 done by
measurement), so the two routes can be cross-checked.
"""

from __future__ import annotations

from repro.power.interconnect import CommProfile
from repro.kernels import (
    build_acs_kernel,
    build_cic_chain_kernel,
    build_dct_kernel,
    build_fir_kernel,
    build_mixer_kernel,
    run_kernel,
)
from repro.kernels.base import KernelRun


def comm_profile_from_run(
    run: KernelRun,
    span_fraction: float = 1.0,
    switching_activity: float = 0.5,
) -> CommProfile:
    """A :class:`CommProfile` from a kernel's measured bus traffic."""
    return CommProfile(
        words_per_cycle=run.bus_words_per_cycle,
        span_fraction=span_fraction,
        switching_activity=switching_activity,
    )


def measured_kernel_table() -> dict:
    """Run every bundled kernel; return its measured summary.

    Keys are kernel names; values carry the quantities Section 4.1
    consumes: cycles/sample, issued instructions, and bus words per
    cycle.
    """
    builders = (
        build_fir_kernel,
        build_mixer_kernel,
        build_cic_chain_kernel,
        build_acs_kernel,
        build_dct_kernel,
    )
    table = {}
    for builder in builders:
        kernel = builder()
        run = run_kernel(kernel)
        table[kernel.name] = {
            "cycles_per_sample": run.cycles_per_sample,
            "issued": run.issued,
            "bus_words_per_cycle": run.bus_words_per_cycle,
        }
    return table
