"""Bridge measured kernel runs into the power methodology.

The Table 4 communication profiles in :mod:`repro.workloads.configs`
are calibrated analytically; this module derives the same quantities
from cycle-level simulation (Section 4.1 steps 5-6 done by
measurement) and assembles whole measured applications:

* every kernel becomes a picklable
  :class:`~repro.sim.batch.RunRequest`, so a batch of kernels fans out
  through :func:`repro.sim.batch.run_many` behind its content-hash
  cache;
* each run's statistics reduce to a
  :class:`~repro.power.measured.ActivityProfile`;
* :func:`measured_application` rebuilds an application's component
  specs with measured communication wherever the config maps a kernel
  (``ApplicationConfig.kernels``), falling back to the calibrated
  profile - flagged as such - where no kernel equivalent exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import ChipConfig, ColumnConfig
from repro.power.interconnect import CommProfile
from repro.power.measured import (
    ActivityProfile,
    activity_from_stats,
    comm_profile_from_activity,
)
from repro.kernels import (
    build_acs_kernel,
    build_cic_chain_kernel,
    build_cic_comb_kernel,
    build_dct_kernel,
    build_fir_kernel,
    build_mixer_kernel,
    build_mixer_stream_kernel,
    run_kernel,
)
from repro.kernels.base import Kernel, KernelRun
from repro.power.model import ComponentSpec
from repro.sim.batch import ResultCache, RunRequest, run_many
from repro.workloads.configs import ApplicationConfig, application

#: Kernel registry for the measured pipeline, keyed by kernel name.
KERNEL_BUILDERS = {
    "fir-8tap": build_fir_kernel,
    "complex-mixer": build_mixer_kernel,
    "mixer-stream": build_mixer_stream_kernel,
    "cic-integrator-chain": build_cic_chain_kernel,
    "cic-comb-scatter": build_cic_comb_kernel,
    "viterbi-acs-butterfly": build_acs_kernel,
    "dct-8point-q14": build_dct_kernel,
}

#: Process-wide memo: kernel key -> measured ActivityProfile.
_ACTIVITY_MEMO: dict = {}

#: Shared stats cache behind every run_many batch in this module.
_RESULT_CACHE = ResultCache()


def comm_profile_from_run(
    run: KernelRun,
    span_fraction: float = 1.0,
    switching_activity: float = 0.5,
) -> CommProfile:
    """A :class:`CommProfile` from a kernel's measured bus traffic."""
    return CommProfile(
        words_per_cycle=run.bus_words_per_cycle,
        span_fraction=span_fraction,
        switching_activity=switching_activity,
    )


def kernel_request(
    kernel: Kernel,
    reference_mhz: float = 100.0,
    engine: str = "compiled",
) -> RunRequest:
    """Convert a kernel into a picklable single-column run request.

    Only data crosses into the request (the kernel's checker stays
    behind); functional correctness of every kernel is enforced
    separately by ``tests/integration/test_kernels.py``.
    """
    memory_images = tuple(
        (0, tile, base, tuple(words))
        for tile, images in sorted(kernel.memory_images.items())
        for base, words in sorted(images.items())
    )
    input_words = ()
    if kernel.input_words:
        input_words = ((0, tuple(kernel.input_words)),)
    read_primes = tuple(
        (0, tile, tuple(words))
        for tile, words in sorted(kernel.read_primes.items())
    )
    return RunRequest(
        config=ChipConfig(
            reference_mhz=reference_mhz,
            columns=(ColumnConfig(divider=1),),
            strict_schedules=kernel.strict,
        ),
        programs=(kernel.program,),
        dou_programs=(kernel.dou_program,),
        memory_images=memory_images,
        input_words=input_words,
        read_primes=read_primes,
        max_ticks=kernel.max_ticks,
        engine=engine,
        label=kernel.name,
    )


def measured_activities(
    kernel_keys,
    processes: int | None = 1,
    cache: ResultCache | None = None,
) -> dict:
    """Measured :class:`ActivityProfile` per kernel key, via run_many.

    Results are memoized process-wide, so an eval pass rendering
    Table 4, Figure 6, and a sweep pays for each kernel run once.
    """
    keys = list(dict.fromkeys(kernel_keys))
    missing = [key for key in keys if key not in _ACTIVITY_MEMO]
    if missing:
        requests = [
            kernel_request(KERNEL_BUILDERS[key]()) for key in missing
        ]
        results = run_many(
            requests,
            processes=processes,
            cache=cache if cache is not None else _RESULT_CACHE,
        )
        for key, result in zip(missing, results):
            _ACTIVITY_MEMO[key] = activity_from_stats(
                result.stats, name=key
            )
    return {key: _ACTIVITY_MEMO[key] for key in keys}


@dataclass(frozen=True)
class MeasuredComponent:
    """One component with measured (or fallback) communication.

    ``spec`` keeps the Table 4 operating point (tiles, frequency) but
    carries the measured :class:`CommProfile` when a kernel exists;
    ``analytical`` is the calibrated original for comparison.
    """

    name: str
    kernel: str | None
    activity: ActivityProfile | None
    analytical: ComponentSpec
    spec: ComponentSpec

    @property
    def measured(self) -> bool:
        """Whether the communication profile came from simulation."""
        return self.activity is not None

    @property
    def words_ratio(self) -> float | None:
        """measured / analytical words-per-cycle (None when either
        side is traffic-free or the component is analytical)."""
        if not self.measured:
            return None
        analytic = self.analytical.comm.words_per_cycle
        if analytic == 0:
            return None
        return self.spec.comm.words_per_cycle / analytic


@dataclass(frozen=True)
class MeasuredApplication:
    """An application whose specs carry measured communication."""

    config: ApplicationConfig
    components: tuple

    @property
    def name(self) -> str:
        """Application display name."""
        return self.config.name

    @property
    def specs(self) -> list:
        """Measured component specs for :class:`PowerModel`."""
        return [component.spec for component in self.components]

    @property
    def activities(self) -> dict:
        """Component name -> measured activity (measured ones only)."""
        return {
            component.name: component.activity
            for component in self.components
            if component.activity is not None
        }

    @property
    def measured_fraction(self) -> float:
        """Share of components whose traffic is measured."""
        return sum(c.measured for c in self.components) \
            / len(self.components)


def measured_application(
    key: str,
    processes: int | None = 1,
    cache: ResultCache | None = None,
) -> MeasuredApplication:
    """Rebuild one application's specs from simulated activity.

    Components mapped in ``ApplicationConfig.kernels`` get their
    communication profile from the kernel's measured words/cycle and
    span (scaled from the kernel's single column to the component's
    column count); unmapped components keep the calibrated profile.
    """
    config = application(key)
    activities = measured_activities(
        config.kernels.values(), processes=processes, cache=cache
    )
    components = []
    for spec in config.components:
        kernel_key = config.kernels.get(spec.name)
        if kernel_key is None:
            components.append(MeasuredComponent(
                name=spec.name, kernel=None, activity=None,
                analytical=spec, spec=spec,
            ))
            continue
        activity = activities[kernel_key]
        comm = comm_profile_from_activity(
            activity,
            n_tiles=spec.n_tiles,
            switching_activity=spec.comm.switching_activity,
        )
        components.append(MeasuredComponent(
            name=spec.name,
            kernel=kernel_key,
            activity=activity.scaled_to(spec.n_tiles),
            analytical=spec,
            spec=ComponentSpec(
                name=spec.name,
                n_tiles=spec.n_tiles,
                frequency_mhz=spec.frequency_mhz,
                comm=comm,
                voltage_v=spec.voltage_v,
            ),
        ))
    return MeasuredApplication(
        config=config, components=tuple(components)
    )


def measured_kernel_table() -> dict:
    """Run every bundled kernel; return its measured summary.

    Keys are kernel names; values carry the quantities Section 4.1
    consumes: cycles/sample, issued instructions, and bus words per
    cycle.
    """
    builders = (
        build_fir_kernel,
        build_mixer_kernel,
        build_mixer_stream_kernel,
        build_cic_chain_kernel,
        build_cic_comb_kernel,
        build_acs_kernel,
        build_dct_kernel,
    )
    table = {}
    for builder in builders:
        kernel = builder()
        run = run_kernel(kernel)
        table[kernel.name] = {
            "cycles_per_sample": run.cycles_per_sample,
            "issued": run.issued,
            "bus_words_per_cycle": run.bus_words_per_cycle,
        }
    return table
