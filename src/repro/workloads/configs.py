"""The paper's Table 4 application mappings, component by component.

Tile counts and frequencies are copied from Table 4; voltages are NOT
copied - they are re-derived through the V-f curve, which reproduces
every paper rail.  Communication profiles (words per cycle on the
buses) are calibrated so each component's total power lands on its
Table 4 row under the Section 4.1 model; the calibration residuals
and the paper's own internal inconsistencies are recorded in
EXPERIMENTS.md.

Each component's comment states the algorithmic origin of its traffic:
e.g. the Viterbi ACS exchanges path metrics across its whole 64-state
trellis every step ("the most demanding communications requirements of
any of the individual algorithms", Section 5.3), while stereo's PFE
and SVD communicate negligibly (their Table 4 rows are pure
compute + leakage, which our model matches to within 0.5%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.interconnect import CommProfile
from repro.power.model import ComponentSpec


@dataclass(frozen=True)
class ApplicationConfig:
    """One Table 4 application: specs plus the paper's reported rows.

    ``kernels`` names, per component, the cycle-level kernel whose
    measured activity stands in for the calibrated communication
    profile (see :mod:`repro.workloads.measured`); components without
    an entry stay analytical - their traffic pattern (e.g. the CIC
    comb's cross-column gather/scatter) has no single-column kernel
    equivalent yet.
    """

    name: str
    rate_label: str
    samples_per_second: float
    components: tuple
    paper_component_mw: dict
    paper_single_voltage_mw: dict
    paper_total_mw: float
    paper_area_mm2: float | None = None
    notes: tuple = ()
    kernels: dict = field(default_factory=dict)

    @property
    def specs(self) -> list:
        """Component specs for :class:`repro.power.PowerModel`."""
        return list(self.components)

    @property
    def n_tiles(self) -> int:
        """Total powered tiles."""
        return sum(c.n_tiles for c in self.components)

    @property
    def component_tile_counts(self) -> list:
        """Per-component tile counts (for the area model)."""
        return [c.n_tiles for c in self.components]


def ddc_config() -> ApplicationConfig:
    """DDC at 64 MS/s (GSM): Table 4's five-component mapping."""
    return ApplicationConfig(
        name="DDC",
        rate_label="64 MS/s",
        samples_per_second=64.0e6,
        components=(
            # Mixer streams each mixed sample to the integrator column:
            # ~1 word/cycle through roughly the full bus.
            ComponentSpec("Digital Mixer", 8, 120.0,
                          CommProfile(1.112)),
            # The integrator cascade passes partial sums between all
            # eight tiles every sample - the heaviest DDC traffic.
            ComponentSpec("CIC Integrator", 8, 200.0,
                          CommProfile(5.620)),
            # The comb receives the decimated stream and redistributes
            # it to both FIR columns (gather/scatter on its behalf).
            ComponentSpec("CIC Comb", 2, 40.0,
                          CommProfile(10.59)),
            # The FIRs keep coefficients and delay lines tile-local;
            # only tap partial sums cross tiles occasionally.
            ComponentSpec("CFIR", 16, 380.0, CommProfile(0.3174)),
            ComponentSpec("PFIR", 16, 370.0, CommProfile(0.006)),
        ),
        paper_component_mw={
            "Digital Mixer": 76.29,
            "CIC Integrator": 241.54,
            "CIC Comb": 18.86,
            "CFIR": 1071.22,
            "PFIR": 1031.75,
        },
        paper_single_voltage_mw={
            "Digital Mixer": 191.83,
            "CIC Integrator": 403.58,
            "CIC Comb": 18.86,
            "CFIR": 1071.22,
            "PFIR": 1031.75,
        },
        paper_total_mw=2427.23,
        paper_area_mm2=139.88,
        notes=(
            "Paper's TOTAL (2427.23) is below the sum of its own rows "
            "(2439.66); we report the consistent sum.",
            "Paper's single-voltage column repeats the multi-voltage "
            "value for CIC Comb while reporting 66% savings; we "
            "recompute the single-voltage run at the 1.3 V app rail.",
        ),
        kernels={
            "Digital Mixer": "mixer-stream",
            "CIC Integrator": "cic-integrator-chain",
            "CIC Comb": "cic-comb-scatter",
            "CFIR": "fir-8tap",
            "PFIR": "fir-8tap",
        },
    )


def stereo_config() -> ApplicationConfig:
    """Stereo vision at 10 f/s, 256x256 (one sample = one frame)."""
    return ApplicationConfig(
        name="Stereo Vision",
        rate_label="10 f/s 256x256",
        samples_per_second=10.0,
        components=(
            # SVD runs whole on one tile: zero bus traffic (the model
            # then reproduces 114.27 mW within 0.5%).
            ComponentSpec("SVD", 1, 500.0, CommProfile(0.0)),
            # PFE tiles each own an image stripe; only stripe borders
            # are exchanged, negligible per cycle.
            ComponentSpec("PFE", 16, 310.0, CommProfile(0.0)),
        ),
        paper_component_mw={"SVD": 114.27, "PFE": 742.68},
        paper_single_voltage_mw={"SVD": 114.27, "PFE": 1151.55},
        paper_total_mw=857.40,
        paper_area_mm2=52.89,
    )


def _wlan_components() -> tuple:
    return (
        # FFT: butterfly operand exchange between its two tiles.
        ComponentSpec("FFT", 2, 90.0, CommProfile(0.7935)),
        # Demod/deinterleave: streams subcarrier words onward.
        ComponentSpec("De-mod/De-Interleave", 1, 60.0,
                      CommProfile(0.3977)),
        # ACS exchanges 64 path metrics across 4 columns every trellis
        # step - Section 5.3 calls this the most demanding traffic in
        # the suite, and it dominates Figure 8.
        ComponentSpec("Viterbi ACS", 16, 540.0, CommProfile(13.56)),
        # Traceback receives survivor decisions from the ACS columns.
        ComponentSpec("Viterbi Traceback", 1, 330.0,
                      CommProfile(0.3997)),
    )


def wlan_config() -> ApplicationConfig:
    """802.11a receive chain at 54 Mbps."""
    return ApplicationConfig(
        name="802.11a",
        rate_label="54 Mbps RX",
        samples_per_second=54.0e6,
        components=_wlan_components(),
        paper_component_mw={
            "FFT": 16.74,
            "De-mod/De-Interleave": 4.71,
            "Viterbi ACS": 3848.01,
            "Viterbi Traceback": 61.07,
        },
        paper_single_voltage_mw={
            "FFT": 79.60,
            "De-mod/De-Interleave": 28.45,
            "Viterbi ACS": 3848.01,
            "Viterbi Traceback": 83.22,
        },
        paper_total_mw=3930.53,
        paper_area_mm2=74.05,
        kernels={"Viterbi ACS": "viterbi-acs-butterfly"},
    )


def wlan_aes_config() -> ApplicationConfig:
    """802.11a + AES message authentication (Section 5.1)."""
    aes = ComponentSpec("AES", 16, 110.0, CommProfile(6.363))
    return ApplicationConfig(
        name="802.11a + AES",
        rate_label="54 Mbps RX + MAC",
        samples_per_second=54.0e6,
        components=_wlan_components() + (aes,),
        paper_component_mw={
            "FFT": 14.80,
            "De-mod/De-Interleave": 4.71,
            "Viterbi ACS": 3848.01,
            "Viterbi Traceback": 61.07,
            "AES": 159.50,
        },
        paper_single_voltage_mw={
            "FFT": 49.36,
            "De-mod/De-Interleave": 28.45,
            "Viterbi ACS": 3848.01,
            "Viterbi Traceback": 83.22,
            "AES": 556.56,
        },
        paper_total_mw=2443.68,
        notes=(
            "Paper's +AES table lists FFT at 14.80 mW versus 16.74 mW "
            "in the standalone table for the identical 2-tile 90 MHz "
            "component; we use one FFT model for both.",
            "Paper's +AES TOTAL (2443.68) is inconsistent with its own "
            "rows (4088.09) - it appears to exclude the Viterbi ACS "
            "or reflect a different operating point; we report the "
            "component sum.",
        ),
        kernels={"Viterbi ACS": "viterbi-acs-butterfly"},
    )


def mpeg4_qcif_config() -> ApplicationConfig:
    """MPEG-4 QCIF encoding at 30 f/s."""
    return ApplicationConfig(
        name="MPEG4 QCIF",
        rate_label="QCIF @ 30 f/s",
        samples_per_second=30.0,
        components=(
            # ME tiles trade macroblock rows of the reference frame.
            ComponentSpec("Motion Estimation", 8, 70.0,
                          CommProfile(3.164)),
            ComponentSpec("DCT/Quant/IQ/IDCT", 2, 60.0,
                          CommProfile(0.0)),
        ),
        paper_component_mw={
            "Motion Estimation": 42.53,
            "DCT/Quant/IQ/IDCT": 4.71,
        },
        paper_single_voltage_mw={
            "Motion Estimation": 42.53,
            "DCT/Quant/IQ/IDCT": 4.71,
        },
        paper_total_mw=47.24,
        paper_area_mm2=32.32,
        notes=(
            "Paper lists the 2-tile 60 MHz DCT row at 4.71 mW, which "
            "equals its 1-tile demod row; the consistent model value "
            "for 2 tiles is 7.97 mW.",
        ),
        kernels={"DCT/Quant/IQ/IDCT": "dct-8point-q14"},
    )


def mpeg4_cif_config() -> ApplicationConfig:
    """MPEG-4 CIF encoding at 30 f/s."""
    return ApplicationConfig(
        name="MPEG4 CIF",
        rate_label="CIF @ 30 f/s",
        samples_per_second=30.0,
        components=(
            ComponentSpec("Motion Estimation", 8, 280.0,
                          CommProfile(3.195)),
            ComponentSpec("DCT/Quant/IQ/IDCT", 8, 60.0,
                          CommProfile(0.0)),
        ),
        paper_component_mw={
            "Motion Estimation": 351.21,
            "DCT/Quant/IQ/IDCT": 18.82,
        },
        paper_single_voltage_mw={
            "Motion Estimation": 351.21,
            "DCT/Quant/IQ/IDCT": 46.48,
        },
        paper_total_mw=370.03,
        paper_area_mm2=31.74,
        notes=(
            "Paper's CIF area (31.74 mm^2 for 16 tiles) is below its "
            "QCIF area (32.32 mm^2 for 10 tiles) - internally "
            "inconsistent; our area model reports the 16-tile value.",
            "Paper's 8-tile 60 MHz DCT row (18.82 mW) is below pure "
            "leakage+dynamic for 8 tiles (31.9 mW); recorded as a "
            "paper quirk.",
        ),
        kernels={"DCT/Quant/IQ/IDCT": "dct-8point-q14"},
    )


_FACTORIES = {
    "ddc": ddc_config,
    "stereo": stereo_config,
    "wlan": wlan_config,
    "wlan_aes": wlan_aes_config,
    "mpeg4_qcif": mpeg4_qcif_config,
    "mpeg4_cif": mpeg4_cif_config,
}


def application(key: str) -> ApplicationConfig:
    """Look up one application config by short key."""
    try:
        return _FACTORIES[key]()
    except KeyError:
        raise KeyError(
            f"unknown application {key!r}; valid: {sorted(_FACTORIES)}"
        ) from None


def all_applications() -> dict:
    """Every Table 4 application, keyed by short name."""
    return {key: factory() for key, factory in _FACTORIES.items()}
