"""Synchroscalar reproduction: a multiple clock domain, power-aware,
tile-based embedded processor (Oliver et al., ISCA 2004).

The package is organized the way the paper is:

* :mod:`repro.tech` - technology substrate (Table 1, Figure 5,
  Sections 4.2-4.4): V-f curve, leakage, wires, area.
* :mod:`repro.power` - the Section 4.1 power methodology.
* :mod:`repro.isa` / :mod:`repro.arch` / :mod:`repro.sim` - the
  Blackfin-like ISA, the machine model (SIMD columns, DOUs, segmented
  buses, clock/voltage domains), and the cycle-level simulator.
* :mod:`repro.sdf` - synchronous dataflow scheduling and mapping.
* :mod:`repro.apps` - DDC, stereo vision, 802.11a, MPEG-4, and AES.
* :mod:`repro.workloads` - Table 4 configurations and the
  parallelization / bus-width / leakage studies.
* :mod:`repro.eval` - drivers that regenerate every table and figure.

Quick start::

    from repro.power import PowerModel
    from repro.workloads import application

    ddc = application("ddc")
    power = PowerModel().application_power(ddc.name, ddc.specs)
    print(f"{power.total_mw:.0f} mW at 64 MS/s")
"""

from repro.errors import (
    AssemblyError,
    ConfigurationError,
    FrequencyRangeError,
    MappingError,
    ReproError,
    SdfError,
    SimulationError,
)
from repro.power import ApplicationPower, CommProfile, ComponentSpec, PowerModel
from repro.tech import (
    PAPER_TECHNOLOGY,
    TechnologyParameters,
    VoltageFrequencyCurve,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "FrequencyRangeError",
    "AssemblyError",
    "SimulationError",
    "SdfError",
    "MappingError",
    "PowerModel",
    "ComponentSpec",
    "CommProfile",
    "ApplicationPower",
    "TechnologyParameters",
    "PAPER_TECHNOLOGY",
    "VoltageFrequencyCurve",
    "__version__",
]
