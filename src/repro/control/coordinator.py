"""Chip-level coordination of per-column clock governors.

PR 3's governors tune one column at a time from local signals; the
paper's whole-chip story (Section 2.4) is that rationally clocked
*pipelines* let every stage run at exactly the rate its kernel needs.
:class:`CoordinatedGovernor` closes that gap: it owns one per-column
governor per pipeline stage and layers three cross-domain policies on
top of their local proposals:

* **rate matching** - adjacent stages are coupled through the
  occupancy of the SDF channel between them (the voltage-adapting
  inter-column buffer): while the channel holds data, the consumer is
  never allowed to run slower, in words per reference tick, than its
  producer, so an upstream slowdown propagates downstream instead of
  overflowing the buffer - and an upstream *speed-up* drags the
  downstream stages with it before their local controllers would have
  reacted;
* **coordinated commits** - the merged divider tuple is returned as
  one decision, so the epoch runner commits every domain's retune at
  the same hyperperiod-legal boundary through the one
  :class:`~repro.control.transitions.TransitionModel` plan (a single
  relock window, one transition record per changed column);
* **halted-column parking and power gating** - a column whose program
  has finished is parked on the slowest ladder rung, and
  :func:`plan_power_gating` turns the epoch timeline's quiescent
  windows into gate segments the energy accounting can price (gated
  rail = retention leakage only, re-wake = rail recharge), with the
  break-even left to the energy-aware caller.

The governor is still a deterministic function of the telemetry
stream, so coordinated multi-column runs stay bit-identical between
the reference and compiled engines - the property the
``--coordinated`` evaluation asserts per scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.errors import ConfigurationError
from repro.control.governor import (
    GOVERNOR_KINDS,
    Governor,
    SlackGovernor,
    Telemetry,
    validate_ladder,
)

__all__ = [
    "CoordinatedGovernor",
    "GateSegment",
    "plan_power_gating",
]


class CoordinatedGovernor(Governor):
    """Cross-domain policy over one per-column governor per stage.

    Parameters
    ----------
    ladder:
        Discrete divider ladder shared by every stage (positive
        integers; validated at construction).
    cycles_per_word:
        Per-stage tile cycles one word costs - the rate currency the
        matching pass converts dividers into (a stage at divider ``d``
        sustains ``1 / (d * cycles_per_word)`` words per reference
        tick).  Its length fixes the pipeline depth.
    governors:
        One governor per stage, each managing exactly its own column.
        Defaults to a per-stage
        :class:`~repro.control.governor.SlackGovernor`, which turns
        the per-stage deadline signals published by the harness
        (``extras["stage_words_to_deadline"]``) into the slowest
        deadline-safe rung.
    guard:
        Guard band forwarded to the default per-stage slack governors.
    high_water:
        Channel occupancy fraction above which the consumer stage is
        forced one rung faster than both its proposal and its current
        operating point - the overflow safety valve.
    match_occupancy:
        Channel occupancy fraction above which the rate-matching
        constraint binds.  Below it the channel is absorbing normal
        burst skew - that is what the voltage-adapting buffers are
        for - and forcing the consumer up to the producer's
        instantaneous rate would over-provision stages that are
        mostly waiting; above it the backlog is real and the consumer
        must at least keep pace.
    park_halted:
        Park halted columns on the slowest ladder rung (the retune is
        legality-checked and priced like any other; the gated-rail
        accounting then makes the parked column nearly free).
    rate_ratios:
        Output words each stage produces per input word it consumes
        (default all 1.0).  A decimating stage (a CIC, an entropy
        coder) has ratio < 1, an expanding stage (a demapper) > 1;
        the matching pass uses the ratio to convert a producer's
        *consumption* rate into the word rate it actually delivers
        downstream.
    predecessors:
        Per-stage producer indices describing the stage graph
        (default the linear chain ``(), (0,), (1,), ...``).  A fork
        is two stages naming the same producer; a join names several.
        A join's availability cap follows the *slower* branch - word
        pairs complete only as fast as the laggard delivers - while
        its overflow rate matching keeps pace with the branches'
        combined arrival rate.
    """

    name = "coordinated"

    def __init__(
        self,
        ladder,
        cycles_per_word: Sequence[float],
        governors: Sequence[Governor] | None = None,
        guard: float = 1.25,
        high_water: float = 0.5,
        match_occupancy: float = 0.25,
        park_halted: bool = True,
        rate_ratios: Sequence[float] | None = None,
        predecessors: Sequence[Sequence[int]] | None = None,
    ) -> None:
        self.ladder = validate_ladder(ladder)
        self.cycles_per_word = tuple(float(c) for c in cycles_per_word)
        if not self.cycles_per_word:
            raise ConfigurationError(
                "cycles_per_word needs at least one stage"
            )
        for stage, cycles in enumerate(self.cycles_per_word):
            if cycles <= 0:
                raise ConfigurationError(
                    f"cycles_per_word for stage {stage} must be "
                    f"positive, got {cycles}"
                )
        n = len(self.cycles_per_word)
        if rate_ratios is None:
            rate_ratios = (1.0,) * n
        self.rate_ratios = tuple(float(r) for r in rate_ratios)
        if len(self.rate_ratios) != n:
            raise ConfigurationError(
                f"{n} stages but {len(self.rate_ratios)} rate ratios"
            )
        for stage, ratio in enumerate(self.rate_ratios):
            if ratio <= 0:
                raise ConfigurationError(
                    f"rate ratio for stage {stage} must be positive, "
                    f"got {ratio}"
                )
        if predecessors is None:
            predecessors = ((),) + tuple(
                (stage - 1,) for stage in range(1, n)
            )
        self.predecessors = tuple(
            tuple(int(p) for p in preds) for preds in predecessors
        )
        if len(self.predecessors) != n:
            raise ConfigurationError(
                f"{n} stages but {len(self.predecessors)} predecessor "
                f"entries"
            )
        for stage, preds in enumerate(self.predecessors):
            for pred in preds:
                if not 0 <= pred < stage:
                    raise ConfigurationError(
                        f"stage {stage} lists predecessor {pred}; "
                        f"producers must be earlier stages"
                    )
        if governors is None:
            governors = [
                SlackGovernor(self.ladder, columns=(i,), guard=guard)
                for i in range(len(self.cycles_per_word))
            ]
        governors = list(governors)
        if len(governors) != len(self.cycles_per_word):
            raise ConfigurationError(
                f"{len(self.cycles_per_word)} stages but "
                f"{len(governors)} per-column governors"
            )
        self.governors = governors
        if not 0.0 <= high_water <= 1.0:
            raise ConfigurationError(
                "high_water must be an occupancy fraction in [0, 1]"
            )
        self.high_water = high_water
        if not 0.0 <= match_occupancy <= 1.0:
            raise ConfigurationError(
                "match_occupancy must be an occupancy fraction in "
                "[0, 1]"
            )
        self.match_occupancy = match_occupancy
        self.park_halted = park_halted

    @property
    def n_stages(self) -> int:
        """Pipeline depth (one column per stage)."""
        return len(self.cycles_per_word)

    def reset(self) -> None:
        """Reset every owned per-column governor."""
        for governor in self.governors:
            governor.reset()

    # ------------------------------------------------------------------
    # the decision
    # ------------------------------------------------------------------
    def decide(self, telemetry: Telemetry) -> tuple:
        """Merge per-stage proposals under the cross-domain policy.

        Pass order matters: the per-stage proposals sweep upstream to
        downstream so each stage's availability cap can use the
        divider just decided for its producer, then the rate-matching
        sweep (same direction, same reason), then the high-water
        emergency boost, and finally halted-column parking - the only
        pass allowed to touch a halted column.
        """
        n = self.n_stages
        if len(telemetry.dividers) != n:
            raise ConfigurationError(
                f"coordinator manages {n} stages but telemetry "
                f"reports {len(telemetry.dividers)} columns"
            )
        dividers = list(telemetry.dividers)
        for stage, governor in enumerate(self.governors):
            if telemetry.halted[stage]:
                continue
            proposal = governor.decide(
                self._stage_view(telemetry, stage, dividers)
            )
            dividers[stage] = proposal[stage]
        for stage in range(n):
            if telemetry.halted[stage] \
                    or not self.predecessors[stage]:
                continue
            dividers[stage] = self._rate_matched(
                telemetry, dividers, stage
            )
        for stage in range(n):
            if telemetry.halted[stage]:
                continue
            if telemetry.input_fill[stage] > self.high_water:
                floor = min(dividers[stage], telemetry.dividers[stage])
                # One rung faster than the floor.  The committed
                # divider may sit off the ladder (a chip booted at an
                # operating point the governor would never pick): snap
                # to the nearest not-slower rung first, and if the
                # floor already outruns every rung, keep it - an
                # emergency boost must never slow the stage down.
                if floor < self.ladder[0]:
                    dividers[stage] = floor
                    continue
                index = 0
                for position, rung in enumerate(self.ladder):
                    if rung <= floor:
                        index = position
                dividers[stage] = self.ladder[max(0, index - 1)]
        if self.park_halted:
            for stage in range(n):
                if telemetry.halted[stage]:
                    dividers[stage] = self.ladder[-1]
        return tuple(dividers)

    def _stage_view(
        self, telemetry: Telemetry, stage: int, decided: list
    ) -> Telemetry:
        """Telemetry as stage ``stage``'s own governor sees it.

        The chip-level deadline signals are rewritten into the
        single-column form the stock governors consume: the stage's
        own words owed (``stage_words_to_deadline[stage]`` when the
        harness publishes it, the end-to-end figure otherwise - the
        conservative fallback), the shared deadline window, and the
        stage's own per-word cost.

        The owed words are additionally capped by *availability*: a
        stage cannot process more than its current backlog plus what
        its producers - at the dividers just decided for them this
        sweep - can deliver inside the deadline window.  This is how
        an upstream slowdown propagates downstream: fewer deliverable
        words mean a slower deadline-safe rung for the consumer, where
        an uncoordinated stage would spin fast and starve.  A join's
        delivery is gated by its *slowest* running branch (word pairs
        complete only when every branch has contributed), scaled by
        the branch count - the Versa-style join rule.
        """
        extras = dict(telemetry.extras)
        stage_words = extras.get("stage_words_to_deadline")
        ticks = extras.get("ticks_to_deadline")
        if stage_words is not None:
            words = stage_words[stage]
            preds = self.predecessors[stage]
            running = [
                p for p in preds if not telemetry.halted[p]
            ]
            if running and len(running) == len(preds) and ticks:
                per_branch = min(
                    int(
                        ticks * self.rate_ratios[p]
                        / (decided[p] * self.cycles_per_word[p])
                    )
                    for p in running
                )
                deliverable = telemetry.backlog_words[stage] \
                    + len(preds) * per_branch
                words = min(words, deliverable)
            extras["words_to_deadline"] = words
        extras["cycles_per_word"] = self.cycles_per_word[stage]
        return replace(telemetry, extras=extras)

    def _rate_matched(
        self, telemetry: Telemetry, dividers: list, stage: int
    ) -> int:
        """Slowest rung at least as fast as the upstream delivery.

        The constraint binds only while the channel into ``stage``
        is genuinely filling (occupancy fraction above
        ``match_occupancy``) and some upstream stage is still running;
        a sub-threshold trickle is burst skew the buffer exists to
        absorb.  Matching never relaxes the stage below its own
        proposal's speed - it can only make a consumer faster, the
        deadline floor is the per-stage governor's job.

        The producer side is the *combined* delivery rate of every
        running predecessor in output words per reference tick (a
        producer consuming a word every ``d * c`` ticks delivers
        ``ratio / (d * c)`` words per tick; a join's channel fills at
        the branches' sum) - so a consumer behind a decimator relaxes
        by the decimation factor, and a consumer behind an expander
        speeds up by it.
        """
        proposal = dividers[stage]
        running = [
            p for p in self.predecessors[stage]
            if not telemetry.halted[p]
        ]
        if not running:
            return proposal
        if telemetry.input_fill[stage] <= self.match_occupancy:
            return proposal
        if len(running) == 1:
            # Exact form for the common single-producer case (no
            # reciprocal round trip): ticks between delivered words.
            p = running[0]
            upstream_interval = (
                dividers[p] * self.cycles_per_word[p]
                / self.rate_ratios[p]
            )
        else:
            upstream_interval = 1.0 / sum(
                self.rate_ratios[p]
                / (dividers[p] * self.cycles_per_word[p])
                for p in running
            )
        # Largest ladder rung whose word interval still meets the
        # upstream delivery rate; the fastest rung if even that is
        # too slow (the stage then simply cannot fall further behind).
        matched = None
        for divider in self.ladder:
            if divider * self.cycles_per_word[stage] \
                    <= upstream_interval:
                matched = divider
        if matched is None:
            matched = self.ladder[0]
        return min(proposal, matched)


GOVERNOR_KINDS[CoordinatedGovernor.name] = CoordinatedGovernor


# ----------------------------------------------------------------------
# power gating of quiescent windows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GateSegment:
    """A maximal run of epochs one column spent fully quiescent.

    ``start_epoch``/``end_epoch`` index into the governed run's
    timeline (half-open, like ranges); ``start_tick``/``end_tick``
    are the corresponding reference ticks.  ``wake`` is True when a
    non-quiescent window for the same column follows the segment, so
    gating it must price a rail re-wake
    (:meth:`~repro.control.transitions.TransitionModel.wake_energy_nj`);
    a segment running to the end of the timeline powers off for good
    and owes no wake charge.
    """

    column: int
    start_epoch: int
    end_epoch: int
    start_tick: int
    end_tick: int
    wake: bool

    @property
    def epochs(self) -> int:
        """Number of epoch windows the segment spans."""
        return self.end_epoch - self.start_epoch

    @property
    def duration_ticks(self) -> int:
        """Reference ticks the segment spans."""
        return self.end_tick - self.start_tick


def _is_quiescent(activity) -> bool:
    """Whether a window recorded no issue and no bus word."""
    return activity.issued == 0 and activity.bus_words == 0


def plan_power_gating(timeline: Sequence) -> tuple:
    """Candidate gate segments of a governed run's epoch timeline.

    A (epoch, column) window is *gateable* when the recorded activity
    shows zero issued instructions and zero bus words: nothing the
    column did in that window could have depended on its rail being
    up, so charging it at the gated rate keeps the energy books exact
    (halted columns satisfy this permanently; a stage stalled on an
    empty channel satisfies it for as long as no word arrives).
    Consecutive gateable windows merge into one maximal
    :class:`GateSegment` per column, ordered by (column, start).

    The planner is deliberately energy-blind: whether a segment is
    worth gating (retention savings vs the re-wake rail charge) is
    decided by the caller holding the power model - see
    ``repro.workloads.coordinated.charge_pipeline_ledger``.
    """
    timeline = list(timeline)
    if not timeline:
        return ()
    for epoch in timeline:
        if not epoch.column_activity:
            raise ConfigurationError(
                f"epoch {epoch.index} carries no column activity - "
                f"gating needs the per-window deltas"
            )
    n_columns = len(timeline[0].dividers)
    segments = []
    for column in range(n_columns):
        start = None
        for position, epoch in enumerate(timeline):
            quiet = _is_quiescent(epoch.column_activity[column])
            if quiet and start is None:
                start = position
            elif not quiet and start is not None:
                segments.append(GateSegment(
                    column=column,
                    start_epoch=start,
                    end_epoch=position,
                    start_tick=timeline[start].start_tick,
                    end_tick=timeline[position].start_tick,
                    wake=True,
                ))
                start = None
        if start is not None:
            segments.append(GateSegment(
                column=column,
                start_epoch=start,
                end_epoch=len(timeline),
                start_tick=timeline[start].start_tick,
                end_tick=timeline[-1].end_tick,
                wake=False,
            ))
    return tuple(segments)
