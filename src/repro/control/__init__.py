"""Runtime DVFS control subsystem.

Closes the loop the paper leaves static: feedback
:mod:`governors <repro.control.governor>` observe buffer occupancy
and deadline slack at epoch boundaries, a
:mod:`transition model <repro.control.transitions>` prices and
legality-checks each divider/rail change (PLL relock, rail
charge/discharge, hyperperiod-boundary commits), and the
:mod:`epoch runner <repro.control.epochs>` drives any simulation
engine through the resulting `(ClockTree, duration)` timeline with
bit-identical statistics on the compiled and reference paths.
"""

from repro.control.governor import (
    Governor,
    OccupancyPIGovernor,
    SlackGovernor,
    StaticGovernor,
    Telemetry,
)
from repro.control.transitions import TransitionModel, TransitionRecord
from repro.control.epochs import (
    GovernedRun,
    run_governed,
    snapshot_telemetry,
)

__all__ = [
    "Governor",
    "GovernedRun",
    "OccupancyPIGovernor",
    "SlackGovernor",
    "StaticGovernor",
    "Telemetry",
    "TransitionModel",
    "TransitionRecord",
    "run_governed",
    "snapshot_telemetry",
]
