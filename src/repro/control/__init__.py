"""Runtime DVFS control subsystem.

Closes the loop the paper leaves static: feedback
:mod:`governors <repro.control.governor>` observe buffer occupancy
and deadline slack at epoch boundaries, a
:mod:`transition model <repro.control.transitions>` prices and
legality-checks each divider/rail change (PLL relock, rail
charge/discharge, hyperperiod-boundary commits), the
:mod:`epoch runner <repro.control.epochs>` drives any simulation
engine through the resulting `(ClockTree, duration)` timeline with
bit-identical statistics on the compiled and reference paths, and the
:mod:`chip-level coordinator <repro.control.coordinator>` governs
multi-column pipelines end to end - per-stage governors under a
cross-domain rate-matching policy, single-boundary commits, and
power gating of quiescent columns.
"""

from repro.control.governor import (
    GOVERNOR_KINDS,
    Governor,
    OccupancyPIGovernor,
    SlackGovernor,
    StaticGovernor,
    Telemetry,
    create_governor,
    validate_ladder,
)
from repro.control.transitions import TransitionModel, TransitionRecord
from repro.control.epochs import (
    GovernedRun,
    run_governed,
    snapshot_telemetry,
)
from repro.control.coordinator import (
    CoordinatedGovernor,
    GateSegment,
    plan_power_gating,
)

__all__ = [
    "CoordinatedGovernor",
    "GOVERNOR_KINDS",
    "GateSegment",
    "Governor",
    "GovernedRun",
    "OccupancyPIGovernor",
    "SlackGovernor",
    "StaticGovernor",
    "Telemetry",
    "TransitionModel",
    "TransitionRecord",
    "create_governor",
    "plan_power_gating",
    "run_governed",
    "snapshot_telemetry",
    "validate_ladder",
]
