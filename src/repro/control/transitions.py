"""PLL-relock and voltage-rail transition model for runtime DVFS.

Synchroscalar picks each column's divider and rail once at startup
(Section 2.4); making that choice dynamic costs something the static
paper never had to model:

* **relock latency** - retuning a column's divided clock glitches its
  phase, so the column is clock-gated while the divider output
  relocks.  Modelled as a fixed real-time window converted to
  reference ticks (the only time base the simulator has).
* **rail transition energy** - moving a domain between discrete
  supply rails charges or discharges the rail's decoupling
  capacitance.  Modelled as ``1/2 * C_rail * |V_new^2 - V_old^2|``
  per tile, with ``C_rail`` expressed as a multiple of the tile's
  effective switched capacitance (derived from Table 1's
  ``U = 0.1 mW/MHz`` at the 1.0 V reference: P = C V^2 f gives
  C_eff = U / V_ref^2 = 0.1 nF per tile).
* **legality** - divider changes commit only at hyperperiod
  boundaries of the outgoing clock, where every column phase is
  aligned; anywhere else the retuned edge schedule would depend on
  sub-hyperperiod phase and the compiled engine's striding contract
  would break.

Voltages come from the same :class:`~repro.tech.vf_curve` lookup and
discrete rail set the static methodology uses (Section 4.1 step 8),
so a governor's operating points are always points the paper's
hardware could actually configure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.tech.parameters import PAPER_TECHNOLOGY, TechnologyParameters
from repro.tech.vf_curve import VoltageFrequencyCurve

__all__ = ["TransitionModel", "TransitionRecord"]


@dataclass(frozen=True)
class TransitionRecord:
    """One committed per-column operating-point change.

    ``tick`` is the commit boundary in reference ticks;
    ``relock_ticks`` is how many reference ticks the column stays
    clock-gated while its divided clock relocks (zero tile-clock
    edges arrive in that window, on either engine); ``energy_nj`` is
    the rail charge/discharge energy in nanojoules (zero for a pure
    divider retune on an unchanged rail).  Records are emitted only
    for *changed* columns - an unchanged column costs nothing.
    """

    tick: int
    column: int
    from_divider: int
    to_divider: int
    from_voltage_v: float
    to_voltage_v: float
    relock_ticks: int
    energy_nj: float

    @property
    def label(self) -> str:
        """Short human-readable summary for reports."""
        return (
            f"t{self.tick} col{self.column} "
            f"/{self.from_divider}->{self.to_divider} "
            f"{self.from_voltage_v:.2f}V->{self.to_voltage_v:.2f}V"
        )


class TransitionModel:
    """Costs and legality of runtime divider/voltage changes.

    Parameters
    ----------
    tech, curve, rails:
        The technology the static methodology already uses; voltages
        for any divided frequency are quantized onto the same discrete
        rail set as Table 4.
    relock_us:
        Real-time PLL/divider relock window.  A retuned column is
        clock-gated for ``ceil(relock_us * reference_mhz)`` reference
        ticks.
    rail_capacitance_multiple:
        Rail decoupling capacitance per tile as a multiple of the
        tile's effective switched capacitance (C_eff = U / V_ref^2).
    """

    def __init__(
        self,
        tech: TechnologyParameters = PAPER_TECHNOLOGY,
        curve: VoltageFrequencyCurve | None = None,
        rails: Sequence[float] | None = None,
        relock_us: float = 0.1,
        rail_capacitance_multiple: float = 50.0,
    ) -> None:
        if relock_us < 0:
            raise ConfigurationError("relock_us must be non-negative")
        if rail_capacitance_multiple < 0:
            raise ConfigurationError(
                "rail_capacitance_multiple must be non-negative"
            )
        self.tech = tech
        self.curve = curve or VoltageFrequencyCurve.from_technology(tech)
        self.rails = tuple(rails) if rails is not None \
            else tech.voltage_rails
        self.relock_us = float(relock_us)
        # C_eff per tile in nF: U [mW/MHz] / V_ref^2 (P = C V^2 f).
        c_eff_nf = tech.tile_power_mw_per_mhz \
            / (tech.u_reference_voltage ** 2)
        self.rail_capacitance_nf_per_tile = (
            rail_capacitance_multiple * c_eff_nf
        )

    # ------------------------------------------------------------------
    # primitive terms
    # ------------------------------------------------------------------
    def voltage_for(
        self, reference_mhz: float, divider: int
    ) -> float:
        """Minimum rail supporting ``reference_mhz / divider``."""
        return self.curve.quantize_voltage(
            reference_mhz / divider, self.rails
        )

    def relock_ticks(self, reference_mhz: float) -> int:
        """Reference ticks a retuned column spends clock-gated."""
        return math.ceil(self.relock_us * reference_mhz)

    def transition_energy_nj(
        self, v_from: float, v_to: float, n_tiles: int
    ) -> float:
        """Rail charge/discharge energy for one domain's rail move.

        ``1/2 * C_rail * |V_to^2 - V_from^2|`` per tile, in nJ
        (nF x V^2).  Zero when the rail does not change - a pure
        divider retune only pays the relock stall.
        """
        delta = abs(v_to * v_to - v_from * v_from)
        return 0.5 * self.rail_capacitance_nf_per_tile * n_tiles * delta

    def wake_energy_nj(self, voltage_v: float, n_tiles: int) -> float:
        """Re-wake charge for a power-gated domain, in nJ.

        Reconnecting a gated rail recharges the domain's decoupling
        capacitance from 0 V back to the operating voltage:
        ``1/2 * C_rail * V^2`` per tile (nF x V^2 = nJ) - the same
        capacitance the rail-transition term uses, with the gated rail
        as the zero-volt starting point.  The chip-level coordinator
        prices this against the retention savings before gating a
        quiescent column (see
        :func:`repro.control.coordinator.plan_power_gating`).
        """
        if voltage_v < 0:
            raise ConfigurationError("voltage_v must be non-negative")
        return self.transition_energy_nj(0.0, voltage_v, n_tiles)

    # ------------------------------------------------------------------
    # legality and planning
    # ------------------------------------------------------------------
    def check_legal(self, tick: int, clock) -> None:
        """Raise unless ``tick`` is a commit-legal boundary.

        Divider changes commit only at hyperperiod boundaries of the
        outgoing clock, where all column phases realign.
        """
        period = clock.hyperperiod()
        if tick % period != 0:
            raise ConfigurationError(
                f"divider change at tick {tick} is illegal: commits "
                f"happen only at hyperperiod boundaries (hyperperiod "
                f"{period})"
            )

    def plan(
        self,
        tick: int,
        clock,
        new_dividers: Sequence[int],
        tiles_per_column: int | None = None,
    ) -> tuple:
        """Transition records for retuning ``clock`` to new dividers.

        Validates legality, then emits one :class:`TransitionRecord`
        per *changed* column with its rail move, relock window, and
        transition energy.  Unchanged columns cost nothing.
        """
        self.check_legal(tick, clock)
        if len(new_dividers) != len(clock.dividers):
            raise ConfigurationError(
                f"plan must cover {len(clock.dividers)} columns, "
                f"got {len(new_dividers)}"
            )
        n_tiles = tiles_per_column if tiles_per_column is not None \
            else self.tech.tiles_per_column
        relock = self.relock_ticks(clock.reference_mhz)
        records = []
        for column, (old, new) in enumerate(
            zip(clock.dividers, new_dividers)
        ):
            if old == new:
                continue
            v_old = self.voltage_for(clock.reference_mhz, old)
            v_new = self.voltage_for(clock.reference_mhz, new)
            records.append(TransitionRecord(
                tick=tick,
                column=column,
                from_divider=old,
                to_divider=new,
                from_voltage_v=v_old,
                to_voltage_v=v_new,
                relock_ticks=relock,
                energy_nj=self.transition_energy_nj(
                    v_old, v_new, n_tiles
                ),
            ))
        return tuple(records)
