"""Feedback clock governors: per-epoch divider decisions.

A governor closes the loop the paper leaves open: Section 2.4 picks
each column's divider once, at startup, from the rate-matched
schedule; a :class:`Governor` instead observes cheap cross-domain
signals at every epoch boundary - inter-column buffer occupancy and
per-frame completion margin, both already present in the machine
model - and retunes dividers at the next legal commit point.

Three policies ship:

* :class:`StaticGovernor` - the do-nothing baseline reproducing the
  paper's startup-only behaviour (and the worst-case-provisioning
  yardstick the evaluation compares against);
* :class:`OccupancyPIGovernor` - a discrete PI controller on the fill
  level of each managed column's input :class:`~repro.arch.buffers`
  port, the buffer-occupancy feedback of the GALS CMP control-loop
  literature;
* :class:`SlackGovernor` - a deadline governor that picks the slowest
  divider still meeting the next frame deadline from the measured
  completion margin (slack), with a configurable guard band.

Governors are deterministic functions of the telemetry stream, so a
governed run is exactly reproducible on either simulation engine -
the property the differential tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "GOVERNOR_KINDS",
    "Governor",
    "OccupancyPIGovernor",
    "SlackGovernor",
    "StaticGovernor",
    "Telemetry",
    "create_governor",
    "validate_ladder",
]


def validate_ladder(ladder, context: str | None = None) -> tuple:
    """Normalize a divider ladder; raise on anything unusable.

    A ladder is the discrete operating-point set a governor moves
    along: a non-empty collection of positive integer clock dividers
    with no duplicates.  Returns the sorted tuple (fastest rung
    first); every governor constructor funnels through this check so
    a bad ladder fails at construction time with a
    :class:`~repro.errors.ConfigurationError`, not mid-run.

    ``context`` names the parameter's origin (a generated scenario, a
    stage index) and every error pinpoints the offending rung by
    position, so a failure out of a randomized sweep is
    self-describing instead of "a ladder somewhere was bad".
    """
    prefix = f"{context}: " if context else ""
    rungs = tuple(ladder)
    if not rungs:
        raise ConfigurationError(
            f"{prefix}ladder needs at least one divider"
        )
    for position, divider in enumerate(rungs):
        # Type-check before sorting so a malformed entry fails here,
        # as a ConfigurationError, not inside sorted() as a TypeError.
        if not isinstance(divider, int) or divider < 1:
            raise ConfigurationError(
                f"{prefix}ladder rung {position} (divider "
                f"{divider!r}) is not a positive integer in ladder "
                f"{rungs}"
            )
    if len(set(rungs)) != len(rungs):
        seen: dict = {}
        for position, divider in enumerate(rungs):
            if divider in seen:
                raise ConfigurationError(
                    f"{prefix}ladder rung {position} duplicates rung "
                    f"{seen[divider]} (divider {divider}) in ladder "
                    f"{rungs}"
                )
            seen[divider] = position
    return tuple(sorted(rungs))


@dataclass(frozen=True)
class Telemetry:
    """What a governor sees at one epoch boundary.

    ``reference_tick`` is the boundary's position in reference ticks
    and ``reference_mhz`` the reference clock, so policies can convert
    between ticks and wall time; ``dividers`` and ``halted`` are
    per-column tuples of the committed operating points and halt
    flags.  ``input_fill``/``output_fill`` are the managed ports'
    occupancy fractions in [0, 1] (the voltage-adapting
    :class:`~repro.arch.buffers` between clock domains);
    ``backlog_words`` counts words queued at each column's input
    including any upstream spill the harness is holding.  ``extras``
    carries harness-specific signals (deadline slack, cycles-per-word
    calibration) for policies that need them.  Snapshots are
    immutable - a governor must be a pure function of this record for
    governed runs to replay identically on both engines.
    """

    epoch_index: int
    reference_tick: int
    reference_mhz: float
    dividers: tuple
    halted: tuple
    input_fill: tuple
    output_fill: tuple
    backlog_words: tuple
    extras: dict = field(default_factory=dict)


class Governor:
    """Decides the next epoch's divider tuple from telemetry.

    The policy interface of the control loop: at every epoch boundary
    the runner snapshots a :class:`Telemetry` record and asks the
    governor for the divider tuple to commit next.  Implementations
    must be *deterministic functions of the telemetry stream* (any
    internal state reset by :meth:`reset`) - that purity is what
    keeps a governed run bit-identical between the reference and
    compiled engines, and it is the only behavioural requirement
    beyond returning dividers the chip's ladder can realize.
    """

    name = "governor"

    def decide(self, telemetry: Telemetry) -> tuple:
        """The divider tuple to commit for the next epoch.

        Returning the current dividers unchanged is always legal and
        costs nothing; any change is priced and legality-checked by
        the :class:`~repro.control.transitions.TransitionModel`.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Drop any per-run controller state.

        Called by the epoch runner at the start of every governed run
        so a reused governor instance reproduces the same decision
        stream - the determinism the differential tests rely on.
        Stateless policies inherit this no-op.
        """


class StaticGovernor(Governor):
    """Startup-only clocking: today's Synchroscalar, as a governor.

    Holds one divider tuple for the whole run - either the tuple
    given at construction (committed at the first epoch boundary) or,
    with ``dividers=None``, whatever the chip booted with.  It never
    reacts to telemetry, so it reproduces the paper's Section 2.4
    behaviour exactly and doubles as the worst-case-provisioning
    yardstick every evaluation compares against; a run under this
    governor is bit-identical to the same chip run without the
    control layer at all (the constant-governor equivalence test).
    """

    name = "static"

    def __init__(self, dividers=None) -> None:
        self.dividers = None if dividers is None else tuple(dividers)

    def decide(self, telemetry: Telemetry) -> tuple:
        if self.dividers is None:
            return telemetry.dividers
        return self.dividers


def _ladder_index(ladder: tuple, divider: int) -> int:
    """Position of ``divider`` on the ladder (must be a member)."""
    try:
        return ladder.index(divider)
    except ValueError:
        raise ConfigurationError(
            f"divider {divider} is not on the ladder {ladder}"
        ) from None


def slowest_safe_divider(
    ladder,
    ticks: float,
    words: float,
    cycles_per_word: float,
    guard: float = 1.0,
) -> int | None:
    """Largest divider still delivering the owed cycles in ``ticks``.

    The one provisioning rule shared by the deadline governor (per
    decision) and worst-case static provisioning (once, for the peak
    frame): a column at ``reference / divider`` has ``ticks / divider``
    tile cycles available, which must cover
    ``guard * words * cycles_per_word``.  Returns ``None`` when even
    the fastest rung falls short.
    """
    needed = guard * words * cycles_per_word
    for divider in sorted(ladder, reverse=True):
        if ticks / divider >= needed:
            return divider
    return None


class OccupancyPIGovernor(Governor):
    """PI control on input-buffer occupancy.

    Per managed column the controller tracks the fill level of the
    column's input port against a setpoint: a building backlog
    (positive error) integrates into a speed-up, a starved buffer
    integrates into a slow-down.  The control output moves the column
    along a discrete divider ladder - speeding up by as many rungs as
    the output demands (bursts need fast reaction to protect
    deadlines) but slowing down one rung per epoch (relaxing is never
    urgent), with a deadband so rail transitions are not thrashed.
    """

    name = "occupancy_pi"

    def __init__(
        self,
        ladder,
        columns=None,
        setpoint: float = 0.05,
        kp: float = 30.0,
        ki: float = 4.0,
        deadband: float = 0.5,
        integral_clamp: tuple = (-0.5, 3.0),
    ) -> None:
        self.ladder = validate_ladder(ladder)
        self.columns = None if columns is None else tuple(columns)
        self.setpoint = setpoint
        self.kp = kp
        self.ki = ki
        self.deadband = deadband
        # Asymmetric anti-windup: long idle stretches must not bank a
        # slow-down debt that masks the next burst (speeding up late
        # misses deadlines; slowing down late only costs energy).
        self.integral_floor, self.integral_ceiling = integral_clamp
        self._integral: dict = {}

    def reset(self) -> None:
        self._integral.clear()

    def decide(self, telemetry: Telemetry) -> tuple:
        managed = self.columns if self.columns is not None \
            else tuple(range(len(telemetry.dividers)))
        dividers = list(telemetry.dividers)
        for column in managed:
            if telemetry.halted[column]:
                continue
            error = telemetry.input_fill[column] - self.setpoint
            integral = self._integral.get(column, 0.0) + error
            integral = max(self.integral_floor,
                           min(self.integral_ceiling, integral))
            control = self.kp * error + self.ki * integral
            index = _ladder_index(self.ladder, dividers[column])
            if control > self.deadband:
                rungs = max(1, int(control / max(self.deadband, 1e-9)))
                index = max(0, index - rungs)
            elif control < -self.deadband \
                    and telemetry.backlog_words[column] == 0:
                # Relax one rung at a time, and only with the input
                # buffer empty: a residual backlog at a slower clock
                # is exactly how decay frames miss their deadlines.
                index = min(len(self.ladder) - 1, index + 1)
            if self.ladder[index] != dividers[column]:
                integral = 0.0  # bumpless restart at the new rung
            self._integral[column] = integral
            dividers[column] = self.ladder[index]
        return tuple(dividers)


class SlackGovernor(Governor):
    """Deadline governor: slowest divider that still makes the frame.

    The harness publishes, per epoch, the words still owed before the
    next frame deadline, the reference ticks remaining until it, and
    the measured tile cycles each word costs
    (``extras["words_to_deadline"]``, ``extras["ticks_to_deadline"]``,
    ``extras["cycles_per_word"]``).  The governor picks the largest
    divider whose clock still delivers the owed cycles inside the
    remaining window scaled by a guard band - per-frame completion
    margin turned directly into an operating point.  With nothing
    owed it parks on the slowest rung.
    """

    name = "slack"

    def __init__(
        self,
        ladder,
        columns=None,
        guard: float = 1.25,
    ) -> None:
        self.ladder = validate_ladder(ladder)
        if guard < 1.0:
            raise ConfigurationError("guard must be >= 1.0")
        self.columns = None if columns is None else tuple(columns)
        self.guard = guard

    def decide(self, telemetry: Telemetry) -> tuple:
        words = telemetry.extras.get("words_to_deadline")
        ticks = telemetry.extras.get("ticks_to_deadline")
        cycles_per_word = telemetry.extras.get("cycles_per_word")
        if words is None or ticks is None or cycles_per_word is None:
            return telemetry.dividers
        managed = self.columns if self.columns is not None \
            else tuple(range(len(telemetry.dividers)))
        dividers = list(telemetry.dividers)
        for column in managed:
            if telemetry.halted[column]:
                continue
            dividers[column] = self._divider_for(
                words, ticks, cycles_per_word
            )
        return tuple(dividers)

    def _divider_for(
        self, words: int, ticks: int, cycles_per_word: float
    ) -> int:
        if words <= 0:
            return self.ladder[-1]
        divider = slowest_safe_divider(
            self.ladder, ticks, words, cycles_per_word, self.guard
        )
        return divider if divider is not None else self.ladder[0]


#: Governor registry by policy name.  ``repro.control.coordinator``
#: registers :class:`CoordinatedGovernor` here on import (the package
#: ``__init__`` imports it, so the registry is complete whenever
#: ``repro.control`` is), mirroring how simulation engines register in
#: :data:`repro.sim.engine.ENGINES`.
GOVERNOR_KINDS: dict = {
    StaticGovernor.name: StaticGovernor,
    OccupancyPIGovernor.name: OccupancyPIGovernor,
    SlackGovernor.name: SlackGovernor,
}


def create_governor(
    name: str, *args, context: str | None = None, **kwargs
) -> Governor:
    """Instantiate a governor by registry name.

    The control-layer analogue of
    :func:`repro.sim.engine.create_engine`: positional and keyword
    arguments are forwarded to the policy's constructor (most take the
    divider ladder first), and an unknown name raises a
    :class:`~repro.errors.ConfigurationError` listing the valid
    choices - a configuration mistake, distinguishable from runtime
    simulation failures.  ``context`` (keyword-only, never forwarded)
    names where the parameter came from - e.g. a generated scenario's
    ``(seed, index)`` - so fuzz failures identify themselves.
    """
    prefix = f"{context}: " if context else ""
    try:
        factory = GOVERNOR_KINDS[name]
    except KeyError:
        raise ConfigurationError(
            f"{prefix}unknown governor {name!r}; available: "
            f"{sorted(GOVERNOR_KINDS)}"
        ) from None
    try:
        return factory(*args, **kwargs)
    except ConfigurationError as exc:
        if context:
            raise ConfigurationError(
                f"{prefix}governor {name!r} rejected its "
                f"parameters: {exc}"
            ) from exc
        raise
