"""Epoch timeline: governed runs over any simulation engine.

An *epoch* is a window of reference ticks with a constant divider
tuple.  The governed runner alternates

    feed/observe -> govern -> (plan transitions, retune, gate) ->
    advance one epoch window

until the workload halts, then drains the buses exactly like a plain
run.  Everything engine-facing goes through
:meth:`~repro.sim.engine.Engine.advance`, so the same loop drives the
tick-accurate :class:`~repro.sim.engine.ReferenceEngine` (the
differential oracle) and the hyperperiod-compiled
:class:`~repro.sim.engine.CompiledEngine` (which recompiles its
activity plan per divider tuple behind a cache) - and produces
bit-identical statistics on both.

Epoch windows always *end on the committed clock's hyperperiod grid*
(an epoch may start off-phase right after a retune), so the next
commit point is automatically legal; the
:class:`~repro.control.transitions.TransitionModel` enforces the rule
and prices each change (PLL-relock gating plus rail transition
energy).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.errors import ConfigurationError, SimulationError
from repro.control.governor import Governor, Telemetry
from repro.control.transitions import TransitionModel
from repro.obs.events import BUS
from repro.sim.engine import DEFAULT_MAX_TICKS, Engine, create_engine
from repro.sim.stats import (
    EpochColumnActivity,
    EpochRecord,
    SimulationStats,
)

__all__ = ["GovernedRun", "run_governed", "snapshot_telemetry"]


@dataclass(frozen=True)
class GovernedRun:
    """A finished governed run.

    ``stats`` is the plain ``collect()`` output - bit-comparable with
    an ungoverned run of the same chip (the constant-governor
    equivalence test relies on this); ``stats_with_epochs`` carries
    the timeline for residency histograms and energy accounting.
    """

    stats: SimulationStats
    timeline: tuple
    transitions: tuple
    governor: str

    @property
    def stats_with_epochs(self) -> SimulationStats:
        """The same stats with the epoch timeline attached."""
        return replace(self.stats, epochs=self.timeline)

    @property
    def transition_count(self) -> int:
        """Committed per-column operating-point changes."""
        return len(self.transitions)

    @property
    def transition_energy_nj(self) -> float:
        """Total rail-transition energy across the run."""
        return sum(t.energy_nj for t in self.transitions)


def snapshot_telemetry(
    chip, epoch_index: int, extras: dict | None = None
) -> Telemetry:
    """The governor-visible state at one epoch boundary.

    Reads only cheap, architecturally real signals: the live divider
    tuple, per-column halt flags, the fill fraction (0..1) and word
    count of each column's horizontal input port, and the output-port
    fill - all of the inter-domain buffers the hardware already has.
    ``extras`` merges harness-level signals (deadline slack,
    calibrated cycles-per-word) that a policy may consume.  The
    snapshot never mutates the chip, so taking it is free of
    simulation side effects on either engine.
    """
    return Telemetry(
        epoch_index=epoch_index,
        reference_tick=chip.reference_ticks,
        reference_mhz=chip.clock.reference_mhz,
        dividers=chip.clock.dividers,
        halted=tuple(column.halted for column in chip.columns),
        input_fill=tuple(
            len(column.h_in) / column.h_in.capacity
            for column in chip.columns
        ),
        output_fill=tuple(
            len(column.h_out) / column.h_out.capacity
            for column in chip.columns
        ),
        backlog_words=tuple(
            len(column.h_in) for column in chip.columns
        ),
        extras=dict(extras or {}),
    )


def _column_snapshot(chip) -> list:
    return [
        (
            column.tile_cycles,
            column.controller.issued,
            column.controller.bubbles + column.comm_stalls,
            column.dou.words_retired,
        )
        for column in chip.columns
    ]


def _activity_deltas(before: list, after: list) -> tuple:
    return tuple(
        EpochColumnActivity(
            tile_cycles=b2 - b1,
            issued=i2 - i1,
            idle=d2 - d1,
            bus_words=w2 - w1,
        )
        for (b1, i1, d1, w1), (b2, i2, d2, w2) in zip(before, after)
    )


def run_governed(
    chip,
    governor: Governor,
    transition_model: TransitionModel | None = None,
    engine: str | Engine = "auto",
    epoch_ticks: int | None = None,
    epoch_hyperperiods: int = 4,
    max_ticks: int = DEFAULT_MAX_TICKS,
    drain_hyperperiods: int = 2,
    before_epoch: Callable | None = None,
    telemetry_extras: Callable | None = None,
) -> GovernedRun:
    """Run a chip to completion under a feedback clock governor.

    Parameters
    ----------
    engine:
        Engine name or instance; both engines produce bit-identical
        results for the same governor (the differential contract).
    epoch_ticks / epoch_hyperperiods:
        Window length between governor decisions.  Windows are
        extended so their end tick lands on the committed clock's
        hyperperiod grid, keeping the next commit legal even when
        the window starts off-phase after a retune.
    before_epoch:
        ``callable(chip, epoch_index)`` invoked at each boundary
        before telemetry is read - the hook scenario harnesses use to
        feed frames and drain outputs.
    telemetry_extras:
        ``callable(chip, epoch_index) -> dict`` merged into
        :class:`~repro.control.governor.Telemetry.extras` (deadline
        slack and similar harness-level signals).

    Raises
    ------
    SimulationError
        If the workload has not halted within ``max_ticks``.
    """
    if epoch_ticks is not None and epoch_ticks < 1:
        raise ConfigurationError(
            f"epoch_ticks must be positive, got {epoch_ticks}"
        )
    if epoch_ticks is None and epoch_hyperperiods < 1:
        raise ConfigurationError(
            f"epoch_hyperperiods must be positive, got "
            f"{epoch_hyperperiods}"
        )
    if isinstance(engine, Engine):
        if engine.chip is not chip:
            raise ConfigurationError(
                "the engine instance drives a different chip than "
                "the one being governed"
            )
        runner = engine
    else:
        runner = create_engine(engine, chip)
    model = transition_model or TransitionModel()
    governor.reset()  # a reused instance must replay identically
    start = chip.reference_ticks
    deadline = start + max_ticks
    timeline = []
    transitions = []
    epoch = 0
    while not chip.all_halted:
        if chip.reference_ticks >= deadline:
            raise SimulationError(
                f"governed run exceeded {max_ticks} reference ticks "
                f"without halting"
            )
        if before_epoch is not None:
            before_epoch(chip, epoch)
        extras = telemetry_extras(chip, epoch) \
            if telemetry_extras is not None else None
        telemetry = snapshot_telemetry(chip, epoch, extras)
        target = tuple(governor.decide(telemetry))
        if BUS.active:
            # The decision with its inputs: what the governor saw and
            # what rung it chose - the observable loop state a
            # feedback-control consumer replays a policy from.
            BUS.instant(
                "govern",
                tick=chip.reference_ticks,
                category="control",
                track="governor",
                args={
                    "epoch": epoch,
                    "governor": governor.name,
                    "input_fill": telemetry.input_fill,
                    "output_fill": telemetry.output_fill,
                    "backlog_words": telemetry.backlog_words,
                    "slack": telemetry.extras.get("ticks_to_deadline"),
                    "dividers": telemetry.dividers,
                    "target": target,
                },
            )
        if target != chip.clock.dividers:
            planned = model.plan(
                chip.reference_ticks, chip.clock, target,
                tiles_per_column=chip.config.tiles_per_column,
            )
            for record in planned:
                chip.clock_gate_until[record.column] = (
                    record.tick + record.relock_ticks
                )
            chip.retune(target)
            transitions.extend(planned)
            if BUS.active:
                for record in planned:
                    BUS.instant(
                        "retune_commit",
                        tick=record.tick,
                        category="control",
                        track=f"column{record.column}",
                        args={
                            "from": record.from_divider,
                            "to": record.to_divider,
                            "relock_ticks": record.relock_ticks,
                            "energy_nj": record.energy_nj,
                        },
                    )
        hyperperiod = chip.clock.hyperperiod()
        duration = epoch_ticks if epoch_ticks is not None \
            else epoch_hyperperiods * hyperperiod
        # Align the epoch's END TICK (not merely its duration) to the
        # committed clock's hyperperiod grid: commits are legal only
        # where tick % hyperperiod == 0, and an epoch may start
        # off-phase of a freshly committed clock (e.g. divider 3
        # entered at tick 4).
        end = -(-(chip.reference_ticks + duration) // hyperperiod) \
            * hyperperiod
        duration = end - chip.reference_ticks
        remaining = deadline - chip.reference_ticks
        if duration > remaining:
            # Last-chance partial window: the chip may still halt
            # inside the remaining budget (matching a plain run with
            # the same max_ticks).  No commit follows an unaligned
            # end - if it does not halt, the loop top raises.
            duration = remaining
        before = _column_snapshot(chip)
        epoch_start = chip.reference_ticks
        runner.advance(duration)
        timeline.append(EpochRecord(
            index=epoch,
            start_tick=epoch_start,
            end_tick=chip.reference_ticks,
            dividers=chip.clock.dividers,
            column_activity=_activity_deltas(
                before, _column_snapshot(chip)
            ),
        ))
        if BUS.active:
            BUS.span(
                f"epoch{epoch}",
                epoch_start,
                chip.reference_ticks,
                category="control",
                track="governor",
                args={"dividers": chip.clock.dividers},
            )
        epoch += 1
    # All halted: the engine's own run() contributes zero live ticks
    # and performs exactly the standard post-halt bus drain.
    stats = runner.run(
        max_ticks=max(1, deadline - chip.reference_ticks),
        drain_hyperperiods=drain_hyperperiods,
    )
    return GovernedRun(
        stats=stats,
        timeline=tuple(timeline),
        transitions=tuple(transitions),
        governor=governor.name,
    )
