"""Property-based fuzz evaluation: generated scenarios at scale.

``python -m repro.eval.runner --fuzz`` sweeps one seed's generated
scenario suite (:mod:`repro.workloads.generate`) through the standing
invariant suite - reference/compiled bit-identity, run determinism,
zero deadline misses, energy conservation, ledger books balancing -
and emits the ``BENCH_fuzz.json`` artifact with per-class case
counts.  Any failing case aborts the evaluation with its
``(seed, index)`` pair in the message; replay it verbosely with
``python tools/repro_fuzz_case.py SEED INDEX``.

``--fuzz-seed`` / ``--fuzz-count`` select the suite (defaults below);
``BENCH_SMOKE=1`` shrinks the count so CI's tier-1 lane exercises the
full path cheaply while the dedicated fuzz lane runs the real sweep.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path

from repro.sim.batch import parallel_map
from repro.workloads.generate import (
    APPS,
    CONSERVATION_TOLERANCE,
    TOPOLOGIES,
    check_case,
)

__all__ = [
    "DEFAULT_COUNT",
    "DEFAULT_SEED",
    "INVARIANTS",
    "bench_payload",
    "evaluate",
    "render",
    "write_bench",
]

#: Default suite identity; CI's fuzz matrix overrides the seed.
DEFAULT_SEED = 11
DEFAULT_COUNT = 200

_SMOKE_COUNT = 24

#: The properties every generated case is held to (documentation
#: mirrored into the artifact; the enforcement lives in
#: :func:`repro.workloads.generate.check_invariants`).
INVARIANTS = (
    "reference/compiled engines bit-identical "
    "(statistics, timeline, transitions)",
    "repeated runs fingerprint identically (determinism)",
    "zero deadline misses under the sampled governor",
    f"energy conservation relative error <= {CONSERVATION_TOLERANCE}",
    "energy ledger books balance (totals equal summed entries; "
    "gated windows carry retention leakage only)",
)


def _smoke() -> bool:
    return os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def default_count() -> int:
    """The sweep size: the full suite, or the smoke shard in CI."""
    return _SMOKE_COUNT if _smoke() else DEFAULT_COUNT


def evaluate(
    seed: int = DEFAULT_SEED,
    count: int | None = None,
    processes: int | None = None,
) -> list:
    """Check ``count`` generated cases of one seed; return the rows.

    Cases fan out across worker processes (each worker regenerates
    its scenario from the bare ``(seed, index)`` pair - the same path
    a human repro takes).  A failing case raises with the pair in the
    message; there is nothing to shrink.
    """
    if count is None:
        count = default_count()
    cases = [(seed, index) for index in range(count)]
    labels = [f"fuzz (seed {seed}, index {index})"
              for _, index in cases]
    return parallel_map(
        check_case, cases, processes=processes, labels=labels,
    )


def bench_payload(
    rows: list, seed: int = DEFAULT_SEED
) -> dict:
    """The ``BENCH_fuzz.json`` content."""
    classes = Counter(row["class"] for row in rows)
    apps = Counter(row["app"] for row in rows)
    topologies = Counter(row["topology"] for row in rows)
    governors = Counter(row["governor"] for row in rows)
    worst = max(
        (row["conservation_error"] for row in rows), default=0.0
    )
    return {
        "artifact": "BENCH_fuzz",
        "description": "Property-based sweep of generated pipeline "
                       "scenarios (full app matrix; linear, "
                       "decimating, and fork/join topologies) "
                       "through the invariant suite; any failure "
                       "reproduces from its (seed, index) pair",
        "smoke": _smoke(),
        "seed": seed,
        "cases": len(rows),
        "failures": 0,
        "invariants": list(INVARIANTS),
        "conservation_tolerance": CONSERVATION_TOLERANCE,
        "worst_conservation_error": worst,
        "coverage": {
            "apps": {app: apps.get(app, 0) for app in APPS},
            "topologies": {
                topology: topologies.get(topology, 0)
                for topology in TOPOLOGIES
            },
            "governors": dict(sorted(governors.items())),
            "classes": dict(sorted(classes.items())),
        },
        "totals": {
            "simulated_words": sum(
                row["total_words"] for row in rows
            ),
            "energy_nj": round(
                sum(row["energy_nj"] for row in rows), 3
            ),
            "transitions": sum(row["transitions"] for row in rows),
            "gate_segments": sum(
                row["gate_segments"] for row in rows
            ),
            "rail_wakes": sum(row["rail_wakes"] for row in rows),
        },
    }


def render(rows: list, seed: int = DEFAULT_SEED) -> str:
    """Human-readable coverage summary."""
    classes = Counter(row["class"] for row in rows)
    lines = [
        f"fuzz seed {seed}: {len(rows)} generated scenarios, "
        f"0 failures",
        f"{'class (app/topology/governor)':<38} {'cases':>5}",
        "-" * 44,
    ]
    for key in sorted(classes):
        lines.append(f"{key:<38} {classes[key]:>5}")
    worst = max(
        (row["conservation_error"] for row in rows), default=0.0
    )
    lines.append(
        f"worst conservation error {worst:.3g} "
        f"(tolerance {CONSERVATION_TOLERANCE})"
    )
    return "\n".join(lines)


def write_bench(
    directory: str | Path = ".",
    payload: dict | None = None,
) -> Path:
    """Write ``BENCH_fuzz.json``; returns the path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / "BENCH_fuzz.json"
    target.write_text(
        json.dumps(payload or bench_payload(evaluate()), indent=2)
        + "\n"
    )
    return target
