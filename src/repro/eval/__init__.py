"""Per-table and per-figure experiment drivers.

Each module exposes ``compute()`` returning structured results and
``render()`` returning the text the paper's table/figure reports.
``runner.run_all()`` regenerates everything; EXPERIMENTS.md records
the paper-vs-measured comparison.
"""

from repro.eval import (  # noqa: F401
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table1,
    table2,
    table3,
    table4,
)
from repro.eval.runner import run_all

__all__ = [
    "table1", "table2", "table3", "table4",
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "run_all",
]
