"""Coordinated multi-domain evaluation: govern pipelines end to end.

``python -m repro.eval.runner --coordinated`` runs every multi-column
pipeline scenario under the three policies (static per-stage
worst-case provisioning, independent per-column governors, the
chip-level coordinator), asserts the subsystem's contract, and emits
the ``BENCH_coordinated.json`` artifact.  The contract, per scenario:

* every policy meets **zero deadline misses** at the end of the pipe;
* total energy orders **coordinated < independent < static** - the
  coordinator's rate matching, per-stage deadline decomposition, and
  power gating must beat both uncoordinated extremes, not just the
  static straw man;
* energy conservation is exact (ledger total equals charged power x
  time plus transition and re-wake charges, to float tolerance);
* every governed run is **bit-identical between the reference and
  compiled engines** - statistics, epoch timeline, and transition
  records - so the whole-chip control story inherits the engine
  layer's exactness guarantee.

``BENCH_SMOKE=1`` shortens the frame traces so CI exercises the full
pipeline and every assertion cheaply.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.workloads.coordinated import (
    PIPELINE_GOVERNORS,
    PipelineResult,
    aes_pipeline_scenario,
    ddc_pipeline_scenario,
    mpeg4_pipeline_scenario,
    run_pipeline,
    stereo_pipeline_scenario,
    wlan_rx_pipeline_scenario,
)

#: Pipeline policies compared per scenario (static is the baseline).
GOVERNORS = PIPELINE_GOVERNORS

#: Conservation tolerance for the gated, time-varying energy ledger.
CONSERVATION_TOLERANCE = 1e-9

#: Scenario factories - the full app matrix of the paper's Section 3
#: (DDC, 802.11a receive, AES, MPEG-4, stereo), every one governed
#: end to end; BENCH_SMOKE shortens the traces.
SCENARIOS = {
    "ddc_pipeline": ddc_pipeline_scenario,
    "wlan_rx_pipeline": wlan_rx_pipeline_scenario,
    "aes_pipeline": aes_pipeline_scenario,
    "mpeg4_pipeline": mpeg4_pipeline_scenario,
    "stereo_pipeline": stereo_pipeline_scenario,
}

_SMOKE_FRAMES = 8


def _smoke() -> bool:
    return os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def evaluate_scenario(key: str, frames: int | None = None) -> dict:
    """{policy: PipelineResult} for one scenario, differentially run.

    Every policy executes on *both* engines; the compiled result is
    returned and the reference run must match it bit for bit
    (statistics, timeline, transitions) - the acceptance criterion
    that keeps multi-column governed striding honest.
    """
    factory = SCENARIOS[key]
    if frames is None and _smoke():
        frames = _SMOKE_FRAMES
    # `is not None`, not truthiness: an explicit frames=0 must reach
    # the scenario constructor and fail its no-frames validation
    # loudly instead of silently running the full default trace.
    scenario = factory(frames=frames) if frames is not None \
        else factory()
    results = {}
    for kind in GOVERNORS:
        compiled = run_pipeline(scenario, kind, engine="compiled")
        reference = run_pipeline(scenario, kind, engine="reference")
        if compiled.run.stats != reference.run.stats \
                or compiled.run.timeline != reference.run.timeline \
                or compiled.run.transitions != reference.run.transitions:
            raise AssertionError(
                f"{key}/{kind}: compiled and reference engines "
                f"disagree on a governed multi-column run - the "
                f"bit-identical contract is broken"
            )
        results[kind] = compiled
    return results


def evaluate_all(frames: int | None = None) -> dict:
    """{scenario key: {policy: PipelineResult}} for every scenario."""
    return {
        key: evaluate_scenario(key, frames=frames)
        for key in SCENARIOS
    }


def check_contract(evaluations: dict) -> list:
    """Assert the coordinated-governance contract; return findings.

    Explicit raises, not assert statements: this is the production
    contract behind the CI artifact and must survive ``python -O``.
    """
    findings = []
    for key, results in evaluations.items():
        for kind, result in results.items():
            if result.deadline_misses != 0:
                raise AssertionError(
                    f"{key}/{kind}: {result.deadline_misses} deadline "
                    f"misses - the contract requires zero"
                )
            if result.conservation_error > CONSERVATION_TOLERANCE:
                raise AssertionError(
                    f"{key}/{kind}: energy conservation error "
                    f"{result.conservation_error:.3g} exceeds "
                    f"{CONSERVATION_TOLERANCE}"
                )
        static = results["static"]
        independent = results["independent"]
        coordinated = results["coordinated"]
        if independent.energy_nj >= static.energy_nj:
            raise AssertionError(
                f"{key}: independent governors "
                f"({independent.energy_nj:.1f} nJ) do not beat "
                f"static provisioning ({static.energy_nj:.1f} nJ)"
            )
        if coordinated.energy_nj >= independent.energy_nj:
            raise AssertionError(
                f"{key}: coordination ({coordinated.energy_nj:.1f} "
                f"nJ) does not beat independent per-column governors "
                f"({independent.energy_nj:.1f} nJ)"
            )
        findings.append(
            f"{key}: coordinated saves "
            f"{100 * (1 - coordinated.energy_nj / static.energy_nj):.1f}% "
            f"vs static and "
            f"{100 * (1 - coordinated.energy_nj / independent.energy_nj):.1f}% "
            f"vs independent at zero misses "
            f"({coordinated.wake_count} rail re-wakes priced)"
        )
    return findings


def _result_payload(result: PipelineResult) -> dict:
    residency = {
        column: result.frequency_residency(column)
        for column in range(result.scenario.n_stages)
    }
    return {
        "energy_nj": round(result.energy_nj, 3),
        "transition_nj": round(result.transition_nj, 3),
        "transition_count": result.transition_count,
        "deadline_misses": result.deadline_misses,
        "epochs": len(result.run.timeline),
        "average_mw": round(result.average_mw, 3),
        "idle_fraction": round(result.idle_fraction, 4),
        "simulated_time_us": result.run.stats.simulated_time_us,
        "conservation_relative_error": result.conservation_error,
        "gated_segments": len(result.gate_segments),
        "gated_time_us": round(result.gated_time_us, 3),
        "gated_nj": round(result.gated_nj, 4),
        "rail_wakes": result.wake_count,
        "frequency_residency_ticks": {
            f"col{column}": {
                f"{frequency:g}": ticks
                for frequency, ticks in sorted(table.items())
            }
            for column, table in residency.items()
        },
    }


def bench_payload(evaluations: dict | None = None) -> dict:
    """The ``BENCH_coordinated.json`` content."""
    evaluations = evaluations or evaluate_all()
    findings = check_contract(evaluations)
    scenarios = {}
    for key, results in evaluations.items():
        scenario = results["static"].scenario
        static_nj = results["static"].energy_nj
        scenarios[key] = {
            "name": scenario.name,
            "stages": [
                {
                    "name": stage.name,
                    "cycles_per_word": stage.cycles_per_word,
                    "words_in": stage.words_in,
                    "words_out": stage.words_out,
                }
                for stage in scenario.stages
            ],
            "predecessors": [
                list(preds) for preds in scenario.stage_predecessors
            ],
            "total_exit_words": scenario.total_exit_words,
            "frames": scenario.n_frames,
            "frame_loads": list(scenario.frame_loads),
            "frame_ticks": scenario.frame_ticks,
            "reference_mhz": scenario.reference_mhz,
            "divider_ladder": list(scenario.divider_ladder),
            "static_dividers": list(scenario.static_dividers()),
            "engines_bit_identical": True,
            "governors": {
                kind: dict(
                    _result_payload(result),
                    savings_percent=(
                        None if kind == "static" else round(
                            100 * (1 - result.energy_nj / static_nj), 2
                        )
                    ),
                )
                for kind, result in results.items()
            },
        }
    return {
        "artifact": "BENCH_coordinated",
        "description": "Chip-level coordinated governance of "
                       "multi-column pipelines vs independent "
                       "per-column governors and static worst-case "
                       "provisioning (energy at zero deadline misses; "
                       "gated-rail accounting with re-wake charges; "
                       "reference/compiled engines bit-identical)",
        "smoke": _smoke(),
        "conservation_tolerance": CONSERVATION_TOLERANCE,
        "contract": findings,
        "scenarios": scenarios,
    }


def render(evaluations: dict | None = None) -> str:
    """Human-readable comparison table."""
    evaluations = evaluations or evaluate_all()
    lines = []
    header = (
        f"{'scenario':<18} {'policy':<13} {'energy nJ':>11} "
        f"{'vs static':>9} {'misses':>6} {'trans':>5} "
        f"{'gates':>5} {'wakes':>5}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for key, results in evaluations.items():
        static_nj = results["static"].energy_nj
        for kind, result in results.items():
            savings = "-" if kind == "static" else (
                f"-{100 * (1 - result.energy_nj / static_nj):.1f}%"
            )
            lines.append(
                f"{key:<18} {kind:<13} {result.energy_nj:>11.1f} "
                f"{savings:>9} {result.deadline_misses:>6} "
                f"{result.transition_count:>5} "
                f"{len(result.gate_segments):>5} "
                f"{result.wake_count:>5}"
            )
    return "\n".join(lines)


def write_bench(
    directory: str | Path = ".",
    payload: dict | None = None,
) -> Path:
    """Write ``BENCH_coordinated.json``; returns the path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / "BENCH_coordinated.json"
    target.write_text(
        json.dumps(payload or bench_payload(), indent=2) + "\n"
    )
    return target
