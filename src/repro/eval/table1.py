"""Table 1: technology parameters."""

from __future__ import annotations

from repro.power.report import render_table
from repro.tech.parameters import PAPER_TECHNOLOGY, TechnologyParameters


def compute(tech: TechnologyParameters = PAPER_TECHNOLOGY) -> list:
    """The (parameter, value, source) rows of Table 1."""
    return [
        ("Technology", f"{tech.feature_size_nm:.0f} nm", ""),
        ("Minimum Voltage", f"{tech.v_min} V", "Blackfin DSP [20]"),
        ("Maximum Voltage", f"{tech.v_max} V", "Estimated [17]"),
        ("Threshold Voltage", f"{tech.v_threshold} V", "[17]"),
        ("Temperature", f"{tech.temperature_c:.0f} C", "Assumed"),
        ("Oxide Thickness", f"{tech.oxide_thickness_nm} nm", "[17]"),
        ("Oxide Strength", f"{tech.oxide_strength_v_per_cm:.0e} V/cm",
         "[17]"),
        ("Max Frequency", f"{tech.f_max_mhz:.0f} MHz",
         "V-f model (SPICE substitute)"),
        ("Tile Power", f"{tech.tile_power_mw_per_mhz} mW/MHz",
         "Section 4.2 derivation"),
        ("Tile Size", f"{tech.tile_area_mm2} mm^2", "Section 4.6"),
        ("Wire Capacitance", f"{tech.wire_capacitance_ff_per_mm} fF/mm",
         "Semi-global [16]"),
        ("Wire Pitch", f"{tech.wire_pitch_um} um", "16 lambda [16]"),
    ]


def render() -> str:
    """Table 1 as text."""
    rows = compute()
    return "Table 1. Technology Parameters\n" + render_table(
        ("Parameter", "Value", "Source"), rows
    )
