"""Measured-power evaluation: Table 4 / Figure 6 from simulation.

Assembles the measured side of the evaluation: applications rebuilt
with simulated communication (:mod:`repro.workloads.measured`),
evaluated through the Section 4.1 model, energy-audited with a
:class:`~repro.power.measured.EnergyLedger`, and exported as the
``BENCH_power.json`` artifact recording measured-vs-analytical deltas.

Documented tolerances
---------------------
Measured interconnect power is expected *below* the calibrated
numbers, inside the per-application ratio windows of ``TOLERANCES``:

* DDC: measured/analytical interconnect in [0.15, 1.5].  The mixer
  and CIC integrator kernels land within ~2x of their calibrated
  words/cycle; the CIC comb's gather/scatter kernel counts ~50x
  fewer words than the calibrated 10.59 w/c - like the ACS row, the
  calibrated comb profile back-solves the whole Table 4 residual
  into bus traffic, so measuring it pulls the application ratio just
  below the previous floor.
* 802.11a (+AES): measured/analytical interconnect in [0.05, 1.5].
  The calibrated ACS profile (13.56 words/cycle) back-solves the
  whole Table 4 residual into bus traffic, while counting real
  transfers in the butterfly kernel yields ~6x fewer words - and a
  measured span of ~0.4 because butterfly partners are neighbours on
  the segmented bus (Section 2.3's locality claim, quantified).

Per-domain energy is conserved exactly: the ledger total equals
application power x simulated time to float tolerance.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.power.measured import EnergyLedger, verify_conservation
from repro.power.model import PowerModel, savings_percent
from repro.workloads.configs import all_applications
from repro.workloads.measured import MeasuredApplication, measured_application

#: (low, high) acceptable measured/analytical interconnect ratios.
TOLERANCES = {
    "DDC": (0.15, 1.5),
    "802.11a": (0.05, 1.5),
    "802.11a + AES": (0.05, 1.5),
}

#: Conservation tolerance for the energy ledger (relative).
CONSERVATION_TOLERANCE = 1e-9


class MeasuredEvaluation:
    """One application evaluated analytically and from measurement."""

    def __init__(
        self,
        app: MeasuredApplication,
        model: PowerModel | None = None,
    ) -> None:
        self.app = app
        self.model = model or PowerModel()
        config = app.config
        self.analytical = self.model.application_power(
            config.name, config.specs
        )
        self.measured = self.model.application_power(
            config.name, app.specs
        )
        self.measured_single = self.model.application_power(
            config.name, app.specs, single_voltage=True
        )
        # Energy audit: charge each domain over the longest measured
        # kernel window (1 us when nothing is measured), splitting the
        # dynamic term by each domain's measured busy fraction.
        activities = app.activities
        self.time_us = max(
            (a.time_us for a in activities.values()), default=1.0
        ) or 1.0
        self.ledger = EnergyLedger.from_application(
            self.measured, self.time_us, activities
        )
        self.conservation_error = verify_conservation(
            self.ledger, self.measured, self.time_us,
            tolerance=CONSERVATION_TOLERANCE,
        )

    @property
    def name(self) -> str:
        """Application display name."""
        return self.app.name

    @property
    def interconnect_ratio(self) -> float | None:
        """Measured / analytical application interconnect power."""
        analytic = sum(c.bus_mw for c in self.analytical.components)
        if analytic == 0:
            return None
        measured = sum(c.bus_mw for c in self.measured.components)
        return measured / analytic

    @property
    def within_tolerance(self) -> bool | None:
        """Whether the interconnect ratio sits in its documented
        window (None when no window is documented)."""
        window = TOLERANCES.get(self.name)
        ratio = self.interconnect_ratio
        if window is None or ratio is None:
            return None
        low, high = window
        return low <= ratio <= high


def evaluate_all(
    keys=None,
    processes: int | None = 1,
    model: PowerModel | None = None,
) -> dict:
    """{application key: MeasuredEvaluation} for every application."""
    keys = list(keys) if keys is not None else list(all_applications())
    model = model or PowerModel()
    return {
        key: MeasuredEvaluation(
            measured_application(key, processes=processes), model
        )
        for key in keys
    }


def bench_payload(evaluations: dict | None = None) -> dict:
    """The ``BENCH_power.json`` content: deltas, ratios, conservation."""
    evaluations = evaluations or evaluate_all()
    applications = {}
    for key, evaluation in evaluations.items():
        components = []
        for component, analytic_power, measured_power in zip(
            evaluation.app.components,
            evaluation.analytical.components,
            evaluation.measured.components,
        ):
            components.append({
                "name": component.name,
                "source": "measured" if component.measured
                          else "analytical",
                "kernel": component.kernel,
                "analytical_mw": round(analytic_power.total_mw, 3),
                "measured_mw": round(measured_power.total_mw, 3),
                "delta_mw": round(
                    measured_power.total_mw - analytic_power.total_mw, 3
                ),
                "analytical_bus_mw": round(analytic_power.bus_mw, 3),
                "measured_bus_mw": round(measured_power.bus_mw, 3),
                "analytical_words_per_cycle":
                    component.analytical.comm.words_per_cycle,
                "measured_words_per_cycle":
                    component.spec.comm.words_per_cycle,
                "measured_span_fraction":
                    component.spec.comm.span_fraction,
            })
        window = TOLERANCES.get(evaluation.name)
        applications[key] = {
            "name": evaluation.name,
            "components": components,
            "analytical_total_mw": round(
                evaluation.analytical.total_mw, 3
            ),
            "measured_total_mw": round(evaluation.measured.total_mw, 3),
            "measured_savings_percent": round(savings_percent(
                evaluation.measured.total_mw,
                evaluation.measured_single.total_mw,
            ), 2),
            "interconnect_ratio": evaluation.interconnect_ratio,
            "tolerance_window": list(window) if window else None,
            "within_tolerance": evaluation.within_tolerance,
            "energy": {
                "time_us": evaluation.time_us,
                "ledger_total_nj": evaluation.ledger.total_nj,
                "power_times_time_nj":
                    evaluation.measured.total_mw * evaluation.time_us,
                "idle_nj": evaluation.ledger.idle_nj,
                "conservation_relative_error":
                    evaluation.conservation_error,
            },
        }
    return {
        "artifact": "BENCH_power",
        "description": "Measured-vs-analytical Table 4 power deltas "
                       "driven by simulated activity via run_many",
        "conservation_tolerance": CONSERVATION_TOLERANCE,
        "applications": applications,
    }


def write_bench(
    directory: str | Path = ".",
    payload: dict | None = None,
) -> Path:
    """Write ``BENCH_power.json`` into ``directory``; returns the path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / "BENCH_power.json"
    target.write_text(
        json.dumps(payload or bench_payload(), indent=2) + "\n"
    )
    return target
