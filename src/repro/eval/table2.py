"""Table 2: tile / SIMD controller / DOU area estimation."""

from __future__ import annotations

from repro.power.report import render_table
from repro.tech.area import (
    AreaModel,
    CONTROLLER_COMPONENT_AREAS_UM2,
    PAPER_CONTROLLER_TOTAL_UM2,
    PAPER_DOU_AREA_MM2,
    PAPER_SIMD_AREA_MM2,
    PAPER_TILE_TOTAL_UM2,
    TILE_COMPONENT_AREAS_UM2,
)


def compute() -> dict:
    """Component areas plus derived totals."""
    model = AreaModel()
    return {
        "tile_components_um2": dict(TILE_COMPONENT_AREAS_UM2),
        "tile_total_um2": model.tile_component_total_um2(),
        "paper_tile_total_um2": PAPER_TILE_TOTAL_UM2,
        "controller_components_um2": dict(CONTROLLER_COMPONENT_AREAS_UM2),
        "paper_controller_total_um2": PAPER_CONTROLLER_TOTAL_UM2,
        "tile_area_scaled_mm2": model.tile_area_mm2(scaled=True),
        "paper_tile_area_mm2": model.tech.tile_area_mm2,
        "simd_area_mm2": PAPER_SIMD_AREA_MM2,
        "dou_area_mm2": PAPER_DOU_AREA_MM2,
        "column_overhead_mm2": model.column_overhead_mm2(),
    }


def render() -> str:
    """Table 2 as text."""
    data = compute()
    rows = [
        (name, f"{area:,.0f}")
        for name, area in data["tile_components_um2"].items()
    ]
    rows.append(("TILE TOTAL", f"{data['tile_total_um2']:,.0f}"))
    rows.append(("  (paper total)", f"{data['paper_tile_total_um2']:,.0f}"))
    rows.extend(
        (name, f"{area:,.0f}")
        for name, area in data["controller_components_um2"].items()
    )
    rows.append(("SIMD+DOU TOTAL (paper)",
                 f"{data['paper_controller_total_um2']:,.0f}"))
    lines = [
        "Table 2. Tile and DOU and SIMD Control Area Estimation (um^2 "
        "at 0.25 um)",
        render_table(("Component", "Area (um^2)"), rows),
        "",
        f"Tile scaled to 130 nm: {data['tile_area_scaled_mm2']:.2f} mm^2 "
        f"(paper Table 1: {data['paper_tile_area_mm2']} mm^2)",
        f"SIMD controller {data['simd_area_mm2']} mm^2 + DOU "
        f"{data['dou_area_mm2']} mm^2 per column",
    ]
    return "\n".join(lines)
