"""Figure 7: power versus parallelization, compute vs overhead split."""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.model import PowerModel
from repro.power.report import render_table
from repro.tech.parameters import PAPER_TECHNOLOGY
from repro.workloads.parallel import parallel_studies


@dataclass(frozen=True)
class ParallelBar:
    """One Figure 7 bar: an application at one tile count."""

    application: str
    n_tiles: int
    compute_mw: float
    overhead_mw: float  # interconnect + leakage (the dark portion)

    @property
    def total_mw(self) -> float:
        """Bar height."""
        return self.compute_mw + self.overhead_mw

    @property
    def overhead_fraction(self) -> float:
        """Dark share of the bar."""
        return self.overhead_mw / self.total_mw if self.total_mw else 0.0


def compute() -> list:
    """Every bar of Figure 7 (exploration voltage rails)."""
    model = PowerModel(rails=PAPER_TECHNOLOGY.exploration_rails)
    bars = []
    for study in parallel_studies().values():
        for total in study.tile_points:
            power = model.application_power(
                study.name, study.configuration(total)
            )
            bars.append(ParallelBar(
                application=study.name,
                n_tiles=total,
                compute_mw=power.compute_mw,
                overhead_mw=power.overhead_mw,
            ))
    return bars


def render() -> str:
    """Figure 7 as a table."""
    rows = [
        (f"{bar.application} {bar.n_tiles} Tiles",
         f"{bar.compute_mw:.1f}", f"{bar.overhead_mw:.1f}",
         f"{bar.total_mw:.1f}", f"{100 * bar.overhead_fraction:.0f}%")
        for bar in compute()
    ]
    return (
        "Figure 7. Power Consumption with varying parallelization (mW)\n"
        + render_table(
            ("Configuration", "Compute", "Interconnect+Leakage",
             "Total", "Dark share"),
            rows,
        )
    )
