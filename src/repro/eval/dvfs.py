"""Runtime-DVFS evaluation: governors vs worst-case provisioning.

``python -m repro.eval.runner --dvfs`` runs every bursty scenario
under the three governor policies (static worst-case provisioning,
occupancy-PI, deadline slack), asserts the subsystem's contract -
feedback governors spend *strictly less* energy than static
provisioning while missing *zero* deadlines, with per-domain energy
conservation exact including transition charges - and emits the
``BENCH_dvfs.json`` artifact.

``BENCH_SMOKE=1`` shrinks the frame traces so CI exercises the whole
pipeline and its assertions without paying the full trace length.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.workloads.dvfs import (
    ScenarioResult,
    mpeg4_scene_scenario,
    run_scenario,
    wlan_mcs_scenario,
)

#: Governor policies compared per scenario (static is the baseline).
GOVERNORS = ("static", "occupancy_pi", "slack")

#: Conservation tolerance for the time-varying energy ledger.
CONSERVATION_TOLERANCE = 1e-9

#: Scenario factories; BENCH_SMOKE shortens the traces.
SCENARIOS = {
    "wlan_mcs": wlan_mcs_scenario,
    "mpeg4_scene": mpeg4_scene_scenario,
}

_SMOKE_FRAMES = 10


def _smoke() -> bool:
    return os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def evaluate_scenario(key: str, frames: int | None = None) -> dict:
    """{governor: ScenarioResult} for one scenario."""
    factory = SCENARIOS[key]
    if frames is None and _smoke():
        frames = _SMOKE_FRAMES
    # `is not None`, not truthiness: an explicit frames=0 must reach
    # the scenario constructor and fail its no-frames validation
    # loudly instead of silently running the full default trace.
    scenario = factory(frames=frames) if frames is not None \
        else factory()
    return {
        kind: run_scenario(scenario, kind) for kind in GOVERNORS
    }


def evaluate_all(frames: int | None = None) -> dict:
    """{scenario key: {governor: ScenarioResult}} for every scenario."""
    return {
        key: evaluate_scenario(key, frames=frames)
        for key in SCENARIOS
    }


def check_contract(evaluations: dict) -> list:
    """Assert the DVFS acceptance contract; returns human findings.

    Per scenario: every governor misses zero deadlines, both feedback
    governors consume strictly less energy than static worst-case
    provisioning, and every ledger conserves energy exactly
    (including transition charges).
    """
    findings = []
    for key, results in evaluations.items():
        static = results["static"]
        for kind, result in results.items():
            # Explicit raises, not assert statements: this is the
            # production contract behind the CI artifact and must
            # survive python -O.
            if result.deadline_misses != 0:
                raise AssertionError(
                    f"{key}/{kind}: {result.deadline_misses} deadline "
                    f"misses - the DVFS contract requires zero"
                )
            if result.conservation_error > CONSERVATION_TOLERANCE:
                raise AssertionError(
                    f"{key}/{kind}: energy conservation error "
                    f"{result.conservation_error:.3g} exceeds "
                    f"{CONSERVATION_TOLERANCE}"
                )
            if kind == "static":
                continue
            if result.energy_nj >= static.energy_nj:
                raise AssertionError(
                    f"{key}/{kind}: {result.energy_nj:.1f} nJ is not "
                    f"below static provisioning "
                    f"({static.energy_nj:.1f} nJ)"
                )
            findings.append(
                f"{key}: {kind} saves "
                f"{100 * (1 - result.energy_nj / static.energy_nj):.1f}% "
                f"vs static at zero misses"
            )
    return findings


def _result_payload(result: ScenarioResult) -> dict:
    residency = result.frequency_residency(0)
    return {
        "energy_nj": round(result.energy_nj, 3),
        "transition_nj": round(result.transition_nj, 3),
        "transition_count": result.transition_count,
        "deadline_misses": result.deadline_misses,
        "epochs": len(result.run.timeline),
        "average_mw": round(result.average_mw, 3),
        "idle_fraction": round(result.idle_fraction, 4),
        "simulated_time_us": result.run.stats.simulated_time_us,
        "conservation_relative_error": result.conservation_error,
        "frequency_residency_ticks": {
            f"{frequency:g}": ticks
            for frequency, ticks in sorted(residency.items())
        },
    }


def bench_payload(evaluations: dict | None = None) -> dict:
    """The ``BENCH_dvfs.json`` content."""
    evaluations = evaluations or evaluate_all()
    findings = check_contract(evaluations)
    scenarios = {}
    for key, results in evaluations.items():
        scenario = results["static"].scenario
        static_nj = results["static"].energy_nj
        scenarios[key] = {
            "name": scenario.name,
            "frames": scenario.n_frames,
            "frame_loads": list(scenario.frame_loads),
            "frame_ticks": scenario.frame_ticks,
            "reference_mhz": scenario.reference_mhz,
            "divider_ladder": list(scenario.divider_ladder),
            "static_divider": scenario.static_divider(),
            "governors": {
                kind: dict(
                    _result_payload(result),
                    savings_percent=(
                        None if kind == "static" else round(
                            100 * (1 - result.energy_nj / static_nj), 2
                        )
                    ),
                )
                for kind, result in results.items()
            },
        }
    return {
        "artifact": "BENCH_dvfs",
        "description": "Feedback DVFS governors vs static worst-case "
                       "provisioning on bursty scenarios (energy at "
                       "zero deadline misses, conservation exact "
                       "including transition charges)",
        "smoke": _smoke(),
        "conservation_tolerance": CONSERVATION_TOLERANCE,
        "contract": findings,
        "scenarios": scenarios,
    }


def render(evaluations: dict | None = None) -> str:
    """Human-readable comparison table."""
    evaluations = evaluations or evaluate_all()
    lines = []
    header = (
        f"{'scenario':<14} {'governor':<13} {'energy nJ':>11} "
        f"{'vs static':>9} {'misses':>6} {'trans':>5} "
        f"{'trans nJ':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for key, results in evaluations.items():
        static_nj = results["static"].energy_nj
        for kind, result in results.items():
            savings = "-" if kind == "static" else (
                f"-{100 * (1 - result.energy_nj / static_nj):.1f}%"
            )
            lines.append(
                f"{key:<14} {kind:<13} {result.energy_nj:>11.1f} "
                f"{savings:>9} {result.deadline_misses:>6} "
                f"{result.transition_count:>5} "
                f"{result.transition_nj:>8.1f}"
            )
    return "\n".join(lines)


def write_bench(
    directory: str | Path = ".",
    payload: dict | None = None,
) -> Path:
    """Write ``BENCH_dvfs.json`` into ``directory``; returns the path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / "BENCH_dvfs.json"
    target.write_text(
        json.dumps(payload or bench_payload(), indent=2) + "\n"
    )
    return target
