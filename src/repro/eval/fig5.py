"""Figure 5: voltage-frequency curve for 15 and 20 FO4 pipelines."""

from __future__ import annotations

import numpy as np

from repro.power.report import render_table
from repro.tech.vf_curve import VoltageFrequencyCurve


def compute(points: int = 16) -> dict:
    """{fo4 depth: [(voltage, f_max MHz), ...]} over the paper sweep."""
    voltages = np.linspace(0.62, 2.12, points)
    out = {}
    for depth in (20, 15):
        curve = VoltageFrequencyCurve.from_technology(fo4_depth=depth)
        out[depth] = curve.sweep(voltages)
    return out


def render() -> str:
    """Figure 5's two series as a table."""
    data = compute()
    rows = []
    for (v, f20), (_, f15) in zip(data[20], data[15]):
        rows.append((f"{v:.2f}", f"{f20:.0f}", f"{f15:.0f}"))
    return (
        "Figure 5. Voltage-Frequency curve (MHz)\n"
        + render_table(("Supply (V)", "20 FO4", "15 FO4"), rows)
    )
