"""Regenerate every table and figure: ``python -m repro.eval.runner``.

Options::

    python -m repro.eval.runner                      # all, to stdout
    python -m repro.eval.runner --experiment fig8    # one experiment
    python -m repro.eval.runner --output results/    # write .txt files
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.eval import fig5, fig6, fig7, fig8, fig9, fig10
from repro.eval import table1, table2, table3, table4

_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
}


def run_all(names: list | None = None) -> dict:
    """{experiment id: rendered text} for the selected experiments."""
    selected = names or list(_EXPERIMENTS)
    unknown = set(selected) - set(_EXPERIMENTS)
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {sorted(unknown)}; valid: "
            f"{sorted(_EXPERIMENTS)}"
        )
    return {name: _EXPERIMENTS[name].render() for name in selected}


def write_results(outputs: dict, directory: str) -> list:
    """Write each experiment's text to ``directory/<name>.txt``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    written = []
    for name, text in outputs.items():
        target = path / f"{name}.txt"
        target.write_text(text + "\n")
        written.append(target)
    return written


def main(argv: list | None = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "--experiment", "-e", action="append", dest="experiments",
        choices=sorted(_EXPERIMENTS), default=None,
        help="run one experiment (repeatable); default: all",
    )
    parser.add_argument(
        "--output", "-o", default=None, metavar="DIR",
        help="write each experiment to DIR/<name>.txt",
    )
    args = parser.parse_args(argv)
    outputs = run_all(args.experiments)
    if args.output:
        for target in write_results(outputs, args.output):
            print(f"wrote {target}")
        return
    for name, text in outputs.items():
        print("=" * 72)
        print(f"== {name}")
        print("=" * 72)
        print(text)
        print()


if __name__ == "__main__":
    main()
