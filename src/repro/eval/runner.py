"""Regenerate every table and figure: ``python -m repro.eval.runner``.

Options::

    python -m repro.eval.runner                      # all, to stdout
    python -m repro.eval.runner --experiment fig8    # one experiment
    python -m repro.eval.runner --output results/    # write .txt files
    python -m repro.eval.runner --jobs 4             # render in parallel
    python -m repro.eval.runner --measured           # sim-driven power
    python -m repro.eval.runner --dvfs               # governor eval
    python -m repro.eval.runner --coordinated        # pipeline eval
    python -m repro.eval.runner --engines --profile  # engine bench
    python -m repro.eval.runner --fuzz --fuzz-seed 23  # property sweep
    python -m repro.eval.runner --engines --trace trace.json  # timeline
    python -m repro.eval.runner --measured \
        --retries 2 --job-timeout 300 --keep-going  # supervised jobs

Experiments are independent pure functions of the model, so they
render concurrently through :func:`repro.sim.batch.parallel_map`.

``--measured`` regenerates the power experiments (Table 4, Figure 6,
and the Figure 8 sweep) from simulated activity batched through
:func:`repro.sim.batch.run_many`, and emits a ``BENCH_power.json``
artifact recording the measured-vs-analytical deltas and the
energy-ledger conservation audit.

``--dvfs`` runs the bursty scenarios under the runtime-DVFS
governors (:mod:`repro.eval.dvfs`), asserts the
governors-beat-static-at-zero-misses contract, and emits
``BENCH_dvfs.json``.  ``BENCH_SMOKE=1`` shortens the traces for CI.

``--coordinated`` runs the multi-column pipeline scenarios under
static / independent / coordinated governance
(:mod:`repro.eval.coordinated`), asserts the
coordinated-beats-independent-beats-static contract with every
governed run bit-identical across engines, and emits
``BENCH_coordinated.json``.  ``BENCH_SMOKE=1`` shortens the traces.

``--fuzz`` sweeps one seed of the generative scenario engine
(:mod:`repro.workloads.generate`) through the invariant suite -
engine bit-identity, determinism, zero misses, energy conservation,
ledger books - and emits ``BENCH_fuzz.json`` with per-class coverage
counts.  Any failure names its ``(seed, index)`` pair; replay with
``tools/repro_fuzz_case.py``.  ``--fuzz-seed`` / ``--fuzz-count``
select the suite; ``--jobs`` fans cases across workers;
``BENCH_SMOKE=1`` shrinks the count.

``--engines`` times every benchmark workload under the reference and
compiled engines (:mod:`repro.eval.engines`), asserts bit-identical
statistics, and emits ``BENCH_engine.json`` with per-workload wall
clocks and speedups - the compiled fabric's perf trajectory.  On
full-size runs the recorded per-workload speedup floors are enforced
(the process exits non-zero below a floor); ``BENCH_SMOKE=1`` shrinks
the workload sizes for CI and disables floor enforcement.  Add
``--profile`` for per-phase wall-clock attribution (compile, dense
ticks, batched jumps, settlement, drain) in the JSON payload, and
``--trace out.json`` to export a Chrome-trace/Perfetto timeline of
the timeline-bearing workloads (after the timing loops, so sinks
never touch the recorded wall clocks).

``--job-timeout`` / ``--retries`` / ``--keep-going`` install a
process-default :class:`~repro.sim.resilience.FaultPolicy`, routing
every batched simulation job through the supervised fault-tolerant
plane (retry with deterministic backoff, per-job timeouts, worker
crash containment, compiled-to-reference engine degradation - see
``docs/robustness.md``).

Every BENCH artifact carries a ``telemetry`` block - event counts by
kind and category from the run's bus subscription plus the
traced/untraced overhead ratio where one was measured - and an
``outcomes`` block tallying supervised-job results (retries,
timeouts, crashes, degradations, cache quarantines), both stamped by
:func:`emit_artifact`, the single emit path all four evaluations
share.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.eval import fig5, fig6, fig7, fig8, fig9, fig10
from repro.eval import table1, table2, table3, table4
from repro.sim.batch import parallel_map

_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
}

#: Experiments with a measured (simulation-driven) variant.
_MEASURED_EXPERIMENTS = ("table4", "fig6", "fig8")


def _render(name: str) -> str:
    """Render one experiment (module-level for worker pickling)."""
    return _EXPERIMENTS[name].render()


def run_all(names: list | None = None, jobs: int | None = 1) -> dict:
    """{experiment id: rendered text} for the selected experiments.

    ``jobs`` fans the renders across worker processes
    (``jobs=1``, the default, stays in-process; ``jobs=None`` sizes
    the pool to the host).
    """
    selected = names or list(_EXPERIMENTS)
    unknown = set(selected) - set(_EXPERIMENTS)
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {sorted(unknown)}; valid: "
            f"{sorted(_EXPERIMENTS)}"
        )
    rendered = parallel_map(_render, selected, processes=jobs)
    return dict(zip(selected, rendered))


def run_measured(names: list | None = None) -> dict:
    """{experiment id: measured render} plus the BENCH payload.

    The kernel simulations behind every measured render share one
    :func:`repro.sim.batch.run_many` batch (memoized process-wide),
    so Table 4, Figure 6, and the Figure 8 sweep price each kernel
    run once.  Returns the rendered texts under their experiment ids
    and the JSON payload under ``"BENCH_power"``.
    """
    from repro.eval.measured import bench_payload, evaluate_all

    selected = list(names) if names else list(_MEASURED_EXPERIMENTS)
    unknown = set(selected) - set(_MEASURED_EXPERIMENTS)
    if unknown:
        raise KeyError(
            f"experiment(s) {sorted(unknown)} have no measured "
            f"variant; valid: {sorted(_MEASURED_EXPERIMENTS)}"
        )
    # Every application is evaluated regardless of the render
    # selection: the BENCH payload always covers the full Table 4,
    # and the kernel runs behind it are memoized process-wide.
    evaluations = evaluate_all()
    outputs = {}
    for name in selected:
        if name == "fig8":
            outputs[name] = fig8.render_measured()
        else:
            outputs[name] = _EXPERIMENTS[name].render_measured(
                evaluations
            )
    outputs["BENCH_power"] = bench_payload(evaluations)
    return outputs


def write_results(outputs: dict, directory: str) -> list:
    """Write each experiment's text to ``directory/<name>.txt``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    written = []
    for name, text in outputs.items():
        target = path / f"{name}.txt"
        target.write_text(text + "\n")
        written.append(target)
    return written


def emit_artifact(
    payload: dict,
    write_bench,
    output: str | None,
    renders: list | None = None,
    telemetry: dict | None = None,
    outcomes: dict | None = None,
) -> Path:
    """The one emit path every BENCH evaluation shares.

    Stamps the telemetry summary into the payload (a
    forward-compatible extra key: ``tools/bench_compare.py`` ignores
    keys it does not know), prints the human-readable renders, writes
    the artifact through the evaluation's ``write_bench``, and
    announces the written path.  ``telemetry`` defaults to an
    explicit zero block so consumers can distinguish "nothing
    subscribed" from "field missing".

    Also stamps the run's job-outcome tallies (retries, timeouts,
    worker crashes, engine degradations, cache quarantines) from
    :func:`repro.sim.resilience.outcomes_snapshot` under
    ``outcomes`` - a benchmark artifact produced by a run that
    silently retried or degraded jobs is not comparable, and
    ``tools/check_outcomes_artifact.py`` /
    ``tools/bench_compare.py`` hold the line in CI.
    """
    summary = dict(telemetry) if telemetry is not None else {
        "events": 0, "by_kind": {}, "by_category": {},
    }
    summary.setdefault("overhead_ratio", None)
    payload["telemetry"] = summary
    if outcomes is None:
        from repro.sim.resilience import outcomes_snapshot

        outcomes = outcomes_snapshot()
    payload["outcomes"] = dict(outcomes)
    for text in renders or ():
        if text:
            print(text)
    target = write_bench(output or ".", payload)
    print(f"wrote {target}")
    return target


def main(argv: list | None = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "--experiment", "-e", action="append", dest="experiments",
        choices=sorted(_EXPERIMENTS), default=None,
        help="run one experiment (repeatable); default: all",
    )
    parser.add_argument(
        "--output", "-o", default=None, metavar="DIR",
        help="write each experiment to DIR/<name>.txt",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="render N experiments in parallel (0 = one per CPU)",
    )
    parser.add_argument(
        "--measured", action="store_true",
        help="regenerate Table 4 / Figure 6 / Figure 8 from simulated "
             "activity and emit BENCH_power.json",
    )
    parser.add_argument(
        "--dvfs", action="store_true",
        help="run the bursty scenarios under the DVFS governors, "
             "assert the energy-vs-deadline contract, and emit "
             "BENCH_dvfs.json",
    )
    parser.add_argument(
        "--coordinated", action="store_true",
        help="run the multi-column pipeline scenarios under static, "
             "independent, and coordinated governance, assert the "
             "energy-ordering and bit-identical-engines contract, "
             "and emit BENCH_coordinated.json",
    )
    parser.add_argument(
        "--fuzz", action="store_true",
        help="sweep one seed of the generative scenario engine "
             "through the invariant suite (bit-identity, "
             "determinism, zero misses, conservation, ledger books) "
             "and emit BENCH_fuzz.json with per-class coverage",
    )
    parser.add_argument(
        "--fuzz-seed", type=int, default=None, metavar="SEED",
        help="with --fuzz: suite seed (default 11); any failing case "
             "reproduces from its (seed, index) pair alone",
    )
    parser.add_argument(
        "--fuzz-count", type=int, default=None, metavar="N",
        help="with --fuzz: number of generated cases (default 200, "
             "or 24 under BENCH_SMOKE=1)",
    )
    parser.add_argument(
        "--engines", action="store_true",
        help="time every benchmark workload under the reference and "
             "compiled engines, assert bit-identical statistics, "
             "enforce the recorded speedup floors on full-size runs, "
             "and emit BENCH_engine.json",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="with --engines: add one instrumented compiled run per "
             "workload and attach its per-phase wall-clock "
             "attribution to BENCH_engine.json",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="with --engines: re-run the timeline-bearing workloads "
             "with the telemetry bus subscribed (after the timing "
             "loops) and write a Chrome-trace/Perfetto JSON to FILE",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget for batched simulation jobs; "
             "over-budget workers are terminated and the job retried "
             "(enables the supervised batch plane)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry each failed/timed-out/crashed batch job up to N "
             "times with deterministic exponential backoff "
             "(enables the supervised batch plane; default 2 when "
             "another supervision flag is given)",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="collect-partial mode: supervise every batch job to a "
             "typed outcome instead of aborting the sweep on the "
             "first terminal failure",
    )
    args = parser.parse_args(argv)
    if (
        args.job_timeout is not None or args.retries is not None
        or args.keep_going
    ):
        from repro.sim.resilience import FaultPolicy, set_default_policy

        set_default_policy(FaultPolicy(
            max_retries=args.retries if args.retries is not None else 2,
            timeout_s=args.job_timeout,
            keep_going=args.keep_going,
        ))
    if args.profile and not args.engines:
        parser.error("--profile only applies to --engines")
    if args.trace and not args.engines:
        parser.error("--trace only applies to --engines")
    exclusive = [
        name for name, chosen in (
            ("--measured", args.measured),
            ("--dvfs", args.dvfs),
            ("--coordinated", args.coordinated),
            ("--fuzz", args.fuzz),
            ("--engines", args.engines),
        ) if chosen
    ]
    if len(exclusive) > 1:
        parser.error(
            f"{' and '.join(exclusive)} are separate evaluations; "
            f"run them one at a time"
        )
    if (
        args.fuzz_seed is not None or args.fuzz_count is not None
    ) and not args.fuzz:
        parser.error("--fuzz-seed/--fuzz-count only apply to --fuzz")
    if args.fuzz:
        from repro.eval import fuzz
        from repro.obs import CountingSink, subscribed

        if args.experiments:
            parser.error("--fuzz generates its own scenarios; drop "
                         "--experiment")
        seed = args.fuzz_seed if args.fuzz_seed is not None \
            else fuzz.DEFAULT_SEED
        sink = CountingSink()
        with subscribed(sink):
            rows = fuzz.evaluate(
                seed, args.fuzz_count,
                processes=None if args.jobs == 0 else args.jobs,
            )
        emit_artifact(
            fuzz.bench_payload(rows, seed),
            fuzz.write_bench, args.output,
            renders=[fuzz.render(rows, seed)],
            telemetry=sink.summary(),
        )
        return
    if args.coordinated:
        from repro.eval import coordinated
        from repro.obs import CountingSink, subscribed

        if args.experiments:
            parser.error("--coordinated runs its own scenarios; drop "
                         "--experiment")
        if args.jobs != 1:
            parser.error("--coordinated evaluates scenarios "
                         "sequentially; --jobs does not apply")
        sink = CountingSink()
        with subscribed(sink):
            evaluations = coordinated.evaluate_all()
        emit_artifact(
            coordinated.bench_payload(evaluations),
            coordinated.write_bench, args.output,
            renders=[coordinated.render(evaluations)],
            telemetry=sink.summary(),
        )
        return
    if args.engines:
        from repro.eval import engines

        if args.experiments:
            parser.error("--engines runs its own workloads; drop "
                         "--experiment")
        if args.jobs != 1:
            parser.error("--engines times workloads sequentially so "
                         "wall clocks are comparable; --jobs does "
                         "not apply")
        evaluations = engines.evaluate_all(profile=args.profile)
        # Tracing happens after every timing loop so no sink ever
        # touches the recorded wall clocks (the telemetry block then
        # carries the measured traced/untraced overhead ratio).
        telemetry = (
            engines.trace_workloads(args.trace) if args.trace
            else None
        )
        # The profile table prints before the floor check below can
        # raise: a failing floor is exactly when the counters are
        # needed to see which striding tier stopped engaging.
        profile_table = engines.render_profile(evaluations)
        emit_artifact(
            engines.bench_payload(evaluations),
            engines.write_bench, args.output,
            renders=[engines.render(evaluations), profile_table],
            telemetry=telemetry,
        )
        failed = engines.below_floor(evaluations)
        if failed:
            floors = ", ".join(
                f"{key} < {engines.SPEEDUP_FLOORS[key]}x"
                for key in failed
            )
            raise SystemExit(
                f"speedup below recorded floor: {floors}"
            )
        return
    if args.dvfs:
        from repro.eval import dvfs
        from repro.obs import CountingSink, subscribed

        if args.experiments:
            parser.error("--dvfs runs its own scenarios; drop "
                         "--experiment")
        if args.jobs != 1:
            parser.error("--dvfs evaluates scenarios sequentially; "
                         "--jobs does not apply")
        sink = CountingSink()
        with subscribed(sink):
            evaluations = dvfs.evaluate_all()
        emit_artifact(
            dvfs.bench_payload(evaluations),
            dvfs.write_bench, args.output,
            renders=[dvfs.render(evaluations)],
            telemetry=sink.summary(),
        )
        return
    if args.measured:
        from repro.eval.measured import write_bench
        from repro.obs import CountingSink, subscribed

        names = args.experiments
        if names is not None:
            unsupported = sorted(
                set(names) - set(_MEASURED_EXPERIMENTS)
            )
            if unsupported:
                parser.error(
                    f"experiment(s) {unsupported} have no measured "
                    f"variant; --measured supports "
                    f"{sorted(_MEASURED_EXPERIMENTS)}"
                )
        sink = CountingSink()
        with subscribed(sink):
            measured = run_measured(names)
        payload = measured.pop("BENCH_power")
        if args.output:
            for written in write_results(measured, args.output):
                print(f"wrote {written}")
        else:
            for name, text in measured.items():
                print("=" * 72)
                print(f"== {name} (measured)")
                print("=" * 72)
                print(text)
                print()
        emit_artifact(
            payload, write_bench, args.output,
            telemetry=sink.summary(),
        )
        return
    jobs = None if args.jobs == 0 else args.jobs
    outputs = run_all(args.experiments, jobs=jobs)
    if args.output:
        for target in write_results(outputs, args.output):
            print(f"wrote {target}")
        return
    for name, text in outputs.items():
        print("=" * 72)
        print(f"== {name}")
        print("=" * 72)
        print(text)
        print()


if __name__ == "__main__":
    main()
