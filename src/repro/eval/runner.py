"""Regenerate every table and figure: ``python -m repro.eval.runner``.

Options::

    python -m repro.eval.runner                      # all, to stdout
    python -m repro.eval.runner --experiment fig8    # one experiment
    python -m repro.eval.runner --output results/    # write .txt files
    python -m repro.eval.runner --jobs 4             # render in parallel

Experiments are independent pure functions of the model, so they
render concurrently through :func:`repro.sim.batch.parallel_map`.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.eval import fig5, fig6, fig7, fig8, fig9, fig10
from repro.eval import table1, table2, table3, table4
from repro.sim.batch import parallel_map

_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
}


def _render(name: str) -> str:
    """Render one experiment (module-level for worker pickling)."""
    return _EXPERIMENTS[name].render()


def run_all(names: list | None = None, jobs: int | None = 1) -> dict:
    """{experiment id: rendered text} for the selected experiments.

    ``jobs`` fans the renders across worker processes
    (``jobs=1``, the default, stays in-process; ``jobs=None`` sizes
    the pool to the host).
    """
    selected = names or list(_EXPERIMENTS)
    unknown = set(selected) - set(_EXPERIMENTS)
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {sorted(unknown)}; valid: "
            f"{sorted(_EXPERIMENTS)}"
        )
    rendered = parallel_map(_render, selected, processes=jobs)
    return dict(zip(selected, rendered))


def write_results(outputs: dict, directory: str) -> list:
    """Write each experiment's text to ``directory/<name>.txt``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    written = []
    for name, text in outputs.items():
        target = path / f"{name}.txt"
        target.write_text(text + "\n")
        written.append(target)
    return written


def main(argv: list | None = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "--experiment", "-e", action="append", dest="experiments",
        choices=sorted(_EXPERIMENTS), default=None,
        help="run one experiment (repeatable); default: all",
    )
    parser.add_argument(
        "--output", "-o", default=None, metavar="DIR",
        help="write each experiment to DIR/<name>.txt",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="render N experiments in parallel (0 = one per CPU)",
    )
    args = parser.parse_args(argv)
    jobs = None if args.jobs == 0 else args.jobs
    outputs = run_all(args.experiments, jobs=jobs)
    if args.output:
        for target in write_results(outputs, args.output):
            print(f"wrote {target}")
        return
    for name, text in outputs.items():
        print("=" * 72)
        print(f"== {name}")
        print("=" * 72)
        print(text)
        print()


if __name__ == "__main__":
    main()
