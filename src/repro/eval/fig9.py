"""Figure 9: leakage sensitivity for DDC and 802.11a."""

from __future__ import annotations

from repro.power.report import render_table
from repro.tech.leakage import LEAKAGE_SWEEP_MA_PER_TILE
from repro.workloads.explorer import LeakageStudy
from repro.workloads.parallel import parallel_studies


def compute() -> list:
    """LeakageSeries for every DDC and 802.11a configuration."""
    studies = parallel_studies()
    series = []
    for key in ("wlan", "ddc"):
        series.extend(LeakageStudy(studies[key]).series())
    return series


def render() -> str:
    """Figure 9 as a table (one column per leakage point)."""
    series = compute()
    header = ["Configuration"] + [
        f"{ma:.1f}" for ma in LEAKAGE_SWEEP_MA_PER_TILE
    ]
    rows = [
        [s.label] + [f"{p:.0f}" for p in s.power_mw]
        for s in series
    ]
    return (
        "Figure 9. Leakage sensitivity for DDC, 802.11a "
        "(power mW vs mA leakage per tile)\n"
        + render_table(header, rows)
    )
