"""Table 4: per-component power summary, single vs multiple voltages."""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.model import PowerModel, savings_percent
from repro.power.report import format_application_power
from repro.workloads.configs import all_applications


@dataclass(frozen=True)
class ComponentRow:
    """One Table 4 row: measured and paper values side by side."""

    application: str
    component: str
    n_tiles: int
    frequency_mhz: float
    voltage_v: float
    power_mw: float
    single_voltage_mw: float
    savings_percent: float
    paper_power_mw: float
    paper_single_voltage_mw: float


def compute() -> list:
    """Every Table 4 row recomputed through the model."""
    model = PowerModel()
    rows = []
    for config in all_applications().values():
        multi = model.application_power(config.name, config.specs)
        single = model.application_power(
            config.name, config.specs, single_voltage=True
        )
        for comp_multi, comp_single in zip(
            multi.components, single.components
        ):
            rows.append(ComponentRow(
                application=config.name,
                component=comp_multi.name,
                n_tiles=comp_multi.n_tiles,
                frequency_mhz=comp_multi.frequency_mhz,
                voltage_v=comp_multi.voltage_v,
                power_mw=comp_multi.total_mw,
                single_voltage_mw=comp_single.total_mw,
                savings_percent=savings_percent(
                    comp_multi.total_mw, comp_single.total_mw
                ),
                paper_power_mw=config.paper_component_mw[comp_multi.name],
                paper_single_voltage_mw=(
                    config.paper_single_voltage_mw[comp_multi.name]
                ),
            ))
        rows.append(ComponentRow(
            application=config.name,
            component="TOTAL",
            n_tiles=multi.n_tiles,
            frequency_mhz=float("nan"),
            voltage_v=float("nan"),
            power_mw=multi.total_mw,
            single_voltage_mw=single.total_mw,
            savings_percent=savings_percent(
                multi.total_mw, single.total_mw
            ),
            paper_power_mw=config.paper_total_mw,
            paper_single_voltage_mw=sum(
                config.paper_single_voltage_mw.values()
            ),
        ))
    return rows


def max_component_savings() -> float:
    """Largest per-component multi-voltage savings (paper: up to 81%)."""
    return max(
        row.savings_percent for row in compute() if row.component != "TOTAL"
    )


def max_application_savings() -> float:
    """Largest whole-application savings (paper: up to 32%)."""
    return max(
        row.savings_percent for row in compute() if row.component == "TOTAL"
    )


def render() -> str:
    """Table 4 as text, application by application."""
    model = PowerModel()
    sections = ["Table 4. Power Results Summary (model)"]
    for config in all_applications().values():
        multi = model.application_power(config.name, config.specs)
        single = model.application_power(
            config.name, config.specs, single_voltage=True
        )
        sections.append(f"\n-- {config.name} ({config.rate_label})")
        sections.append(format_application_power(multi, single))
        for note in config.notes:
            sections.append(f"   note: {note}")
    sections.append(
        f"\nMax component savings {max_component_savings():.0f}% "
        f"(paper: up to 81%); max application savings "
        f"{max_application_savings():.0f}% (paper: up to 32%)."
    )
    return "\n".join(sections)


def render_measured(evaluations: dict | None = None) -> str:
    """Table 4 with a measured column driven by simulated activity.

    Each application section sets the analytical (calibrated
    CommProfile) totals beside the measured ones (communication from
    counted transfers via :func:`repro.sim.batch.run_many`), and
    closes with the energy-ledger audit: per-domain energy summed over
    the simulated window equals application power x time.
    """
    from repro.eval.measured import TOLERANCES, evaluate_all

    evaluations = evaluations or evaluate_all()
    sections = [
        "Table 4 (measured). Power from simulated activity vs "
        "calibrated profiles"
    ]
    for evaluation in evaluations.values():
        app = evaluation.app
        sections.append(
            f"\n-- {app.name} ({app.config.rate_label}); "
            f"{evaluation.measured.n_tiles} tiles, "
            f"{app.measured_fraction:.0%} of components measured"
        )
        sections.append(
            f"{'Algorithm':<28}{'src':>5}{'w/cyc':>8}{'span':>6}"
            f"{'ana mW':>10}{'meas mW':>10}"
        )
        for component, analytic, measured in zip(
            app.components,
            evaluation.analytical.components,
            evaluation.measured.components,
        ):
            source = "sim" if component.measured else "cal"
            sections.append(
                f"{component.name:<28}{source:>5}"
                f"{component.spec.comm.words_per_cycle:>8.3f}"
                f"{component.spec.comm.span_fraction:>6.2f}"
                f"{analytic.total_mw:>10.2f}{measured.total_mw:>10.2f}"
            )
        sections.append(
            f"{'TOTAL':<28}{'':>5}{'':>8}{'':>6}"
            f"{evaluation.analytical.total_mw:>10.2f}"
            f"{evaluation.measured.total_mw:>10.2f}"
        )
        ratio = evaluation.interconnect_ratio
        if ratio is not None:
            window = TOLERANCES.get(evaluation.name)
            bound = (
                f" (documented window {window[0]}..{window[1]}: "
                f"{'ok' if evaluation.within_tolerance else 'OUT'})"
                if window else ""
            )
            sections.append(
                f"   interconnect measured/analytical = "
                f"{ratio:.3f}{bound}"
            )
        sections.append(
            f"   energy ledger: {evaluation.ledger.total_nj:.2f} nJ "
            f"over {evaluation.time_us:.2f} us "
            f"(= power x time, rel err "
            f"{evaluation.conservation_error:.1e}; idle share "
            f"{evaluation.ledger.idle_nj:.2f} nJ)"
        )
    return "\n".join(sections)
