"""Table 4: per-component power summary, single vs multiple voltages."""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.model import PowerModel, savings_percent
from repro.power.report import format_application_power
from repro.workloads.configs import all_applications


@dataclass(frozen=True)
class ComponentRow:
    """One Table 4 row: measured and paper values side by side."""

    application: str
    component: str
    n_tiles: int
    frequency_mhz: float
    voltage_v: float
    power_mw: float
    single_voltage_mw: float
    savings_percent: float
    paper_power_mw: float
    paper_single_voltage_mw: float


def compute() -> list:
    """Every Table 4 row recomputed through the model."""
    model = PowerModel()
    rows = []
    for config in all_applications().values():
        multi = model.application_power(config.name, config.specs)
        single = model.application_power(
            config.name, config.specs, single_voltage=True
        )
        for comp_multi, comp_single in zip(
            multi.components, single.components
        ):
            rows.append(ComponentRow(
                application=config.name,
                component=comp_multi.name,
                n_tiles=comp_multi.n_tiles,
                frequency_mhz=comp_multi.frequency_mhz,
                voltage_v=comp_multi.voltage_v,
                power_mw=comp_multi.total_mw,
                single_voltage_mw=comp_single.total_mw,
                savings_percent=savings_percent(
                    comp_multi.total_mw, comp_single.total_mw
                ),
                paper_power_mw=config.paper_component_mw[comp_multi.name],
                paper_single_voltage_mw=(
                    config.paper_single_voltage_mw[comp_multi.name]
                ),
            ))
        rows.append(ComponentRow(
            application=config.name,
            component="TOTAL",
            n_tiles=multi.n_tiles,
            frequency_mhz=float("nan"),
            voltage_v=float("nan"),
            power_mw=multi.total_mw,
            single_voltage_mw=single.total_mw,
            savings_percent=savings_percent(
                multi.total_mw, single.total_mw
            ),
            paper_power_mw=config.paper_total_mw,
            paper_single_voltage_mw=sum(
                config.paper_single_voltage_mw.values()
            ),
        ))
    return rows


def max_component_savings() -> float:
    """Largest per-component multi-voltage savings (paper: up to 81%)."""
    return max(
        row.savings_percent for row in compute() if row.component != "TOTAL"
    )


def max_application_savings() -> float:
    """Largest whole-application savings (paper: up to 32%)."""
    return max(
        row.savings_percent for row in compute() if row.component == "TOTAL"
    )


def render() -> str:
    """Table 4 as text, application by application."""
    model = PowerModel()
    sections = ["Table 4. Power Results Summary (model)"]
    for config in all_applications().values():
        multi = model.application_power(config.name, config.specs)
        single = model.application_power(
            config.name, config.specs, single_voltage=True
        )
        sections.append(f"\n-- {config.name} ({config.rate_label})")
        sections.append(format_application_power(multi, single))
        for note in config.notes:
            sections.append(f"   note: {note}")
    sections.append(
        f"\nMax component savings {max_component_savings():.0f}% "
        f"(paper: up to 81%); max application savings "
        f"{max_application_savings():.0f}% (paper: up to 32%)."
    )
    return "\n".join(sections)
