"""Table 3: power comparison of Synchroscalar with other platforms.

Synchroscalar rows are recomputed through the Section 4.1 model and
the area model; comparator rows come from the published figures.  The
headline claim - within 8-30X of ASICs, 10-60X better than DSPs - is
re-derived as rate-normalized efficiency ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.model import PowerModel
from repro.power.report import render_table
from repro.tech.area import AreaModel
from repro.workloads.baselines import (
    TABLE3_PLATFORMS,
    efficiency_nw_per_sample,
    efficiency_ratio,
)
from repro.workloads.configs import all_applications

#: Application keys that have a Table 3 section, with paper's totals.
_SECTIONS = {
    "ddc": ("DDC", 2427.23, 139.88),
    "stereo": ("Stereo Vision", 857.40, 52.89),
    "wlan": ("802.11a", 3930.53, 74.05),
    "mpeg4_qcif": ("MPEG4 QCIF", 47.24, 32.32),
    "mpeg4_cif": ("MPEG4 CIF", 370.03, 31.74),
}


@dataclass(frozen=True)
class SynchroscalarRow:
    """Our recomputed platform row for one application."""

    application: str
    power_mw: float
    paper_power_mw: float
    area_mm2: float
    paper_area_mm2: float
    voltage_range: tuple
    nw_per_sample: float


def compute() -> dict:
    """{app: (SynchroscalarRow, comparators, {platform: ratio})}."""
    model = PowerModel()
    area_model = AreaModel()
    applications = all_applications()
    out = {}
    for key, (label, paper_mw, paper_area) in _SECTIONS.items():
        config = applications[key]
        power = model.application_power(config.name, config.specs)
        voltages = sorted({c.voltage_v for c in power.components})
        row = SynchroscalarRow(
            application=label,
            power_mw=power.total_mw,
            paper_power_mw=paper_mw,
            area_mm2=area_model.chip_area_mm2(
                config.component_tile_counts
            ),
            paper_area_mm2=paper_area,
            voltage_range=(voltages[0], voltages[-1]),
            nw_per_sample=efficiency_nw_per_sample(
                power.total_mw, config.samples_per_second
            ),
        )
        comparators = TABLE3_PLATFORMS.get(label, ())
        ratios = {
            figure.platform: efficiency_ratio(
                power.total_mw, config.samples_per_second, figure
            )
            for figure in comparators
        }
        out[label] = (row, comparators, ratios)
    return out


#: Applications whose comparators drive the paper's headline bands.
#: The MPEG4 ASIC rows land near parity (Table 3 itself shows
#: Synchroscalar at 47 mW for 30 f/s against Philips' 30 mW for
#: 15 f/s), and the SV-vs-Blackfin ratio is ~2X by the paper's own
#: figures - so the 8-30X / 10-60X claims rest on the DDC and 802.11a
#: comparisons plus the MPEG4 DSP row, which is what we aggregate.
_ASIC_BAND_APPS = ("DDC", "802.11a")
_DSP_BAND_APPS = ("DDC", "802.11a", "MPEG4 QCIF")


def headline_ratios() -> dict:
    """The 8-30X (ASIC) and 10-60X (DSP) efficiency bands."""
    data = compute()
    asic_ratios = []
    dsp_ratios = []
    for label, (row, comparators, ratios) in data.items():
        for figure in comparators:
            ratio = ratios[figure.platform]
            if ratio is None:
                continue
            if figure.kind in ("asic", "soc") \
                    and label in _ASIC_BAND_APPS:
                # ratio < 1: the ASIC is more efficient; we are within
                # 1/ratio of it.
                asic_ratios.append(1.0 / ratio)
            elif figure.kind == "programmable" \
                    and label in _DSP_BAND_APPS:
                dsp_ratios.append(ratio)
    return {
        "asic_within": (min(asic_ratios), max(asic_ratios)),
        "dsp_better_by": (min(dsp_ratios), max(dsp_ratios)),
    }


def render() -> str:
    """Table 3 as text with the efficiency-ratio summary."""
    data = compute()
    lines = ["Table 3. Power Comparison of Synchroscalar with other "
             "platforms."]
    for label, (row, comparators, ratios) in data.items():
        lines.append("")
        header = ("Platform", "Power (mW)", "Area (mm^2)",
                  "nW/sample", "vs ours")
        table_rows = [(
            "Synchroscalar (model)",
            f"{row.power_mw:.2f}",
            f"{row.area_mm2:.2f}",
            f"{row.nw_per_sample:.2f}",
            "1.0x",
        ), (
            "Synchroscalar (paper)",
            f"{row.paper_power_mw:.2f}",
            f"{row.paper_area_mm2:.2f}",
            "",
            "",
        )]
        for figure in comparators:
            ratio = ratios[figure.platform]
            table_rows.append((
                figure.platform,
                f"{figure.power_mw:.1f}",
                f"{figure.area_mm2:.2f}" if figure.area_mm2 else "?",
                f"{figure.nw_per_sample:.2f}"
                if figure.nw_per_sample else "?",
                f"{ratio:.1f}x" if ratio is not None else "?",
            ))
        lines.append(f"-- {label} ({row.voltage_range[0]}-"
                     f"{row.voltage_range[1]} V)")
        lines.append(render_table(header, table_rows))
    bands = headline_ratios()
    lines.append("")
    lines.append(
        f"Efficiency within {bands['asic_within'][0]:.1f}-"
        f"{bands['asic_within'][1]:.1f}X of ASICs (paper: 8-30X); "
        f"{bands['dsp_better_by'][0]:.1f}-"
        f"{bands['dsp_better_by'][1]:.1f}X better than programmable "
        f"DSPs/CPUs (paper: 10-60X)."
    )
    return "\n".join(lines)
