"""Figure 6: power by application, with and without voltage scaling."""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.model import PowerModel
from repro.power.report import render_table
from repro.workloads.configs import all_applications

#: Figure 6's x-axis order.
_ORDER = ("ddc", "stereo", "wlan", "mpeg4_cif", "mpeg4_qcif", "wlan_aes")


@dataclass(frozen=True)
class Bar:
    """One stacked bar: scaled power plus the unscaled increment."""

    application: str
    scaled_mw: float
    additional_unscaled_mw: float

    @property
    def unscaled_mw(self) -> float:
        """Total height of the stacked bar."""
        return self.scaled_mw + self.additional_unscaled_mw


def compute() -> list:
    """The six bars of Figure 6."""
    model = PowerModel()
    bars = []
    applications = all_applications()
    for key in _ORDER:
        config = applications[key]
        multi = model.application_power(config.name, config.specs)
        single = model.application_power(
            config.name, config.specs, single_voltage=True
        )
        bars.append(Bar(
            application=config.name,
            scaled_mw=multi.total_mw,
            additional_unscaled_mw=single.total_mw - multi.total_mw,
        ))
    return bars


def render() -> str:
    """Figure 6 as a table."""
    rows = [
        (bar.application, f"{bar.scaled_mw:.1f}",
         f"{bar.additional_unscaled_mw:.1f}", f"{bar.unscaled_mw:.1f}")
        for bar in compute()
    ]
    return (
        "Figure 6. Power Consumption by Application (mW)\n"
        + render_table(
            ("Application", "Voltage scaling", "Additional w/o scaling",
             "Single voltage"),
            rows,
        )
    )


def compute_measured(evaluations: dict | None = None) -> list:
    """Figure 6 bars with measured communication, in x-axis order."""
    from repro.eval.measured import evaluate_all

    evaluations = evaluations or evaluate_all()
    bars = []
    for key in _ORDER:
        evaluation = evaluations[key]
        bars.append(Bar(
            application=evaluation.name,
            scaled_mw=evaluation.measured.total_mw,
            additional_unscaled_mw=(
                evaluation.measured_single.total_mw
                - evaluation.measured.total_mw
            ),
        ))
    return bars


def render_measured(evaluations: dict | None = None) -> str:
    """Figure 6 regenerated from simulated activity, beside the
    analytical bars."""
    from repro.eval.measured import evaluate_all

    evaluations = evaluations or evaluate_all()
    analytical = {bar.application: bar for bar in compute()}
    rows = []
    for bar in compute_measured(evaluations):
        rows.append((
            bar.application,
            f"{bar.scaled_mw:.1f}", f"{bar.unscaled_mw:.1f}",
            f"{analytical[bar.application].scaled_mw:.1f}",
            f"{analytical[bar.application].unscaled_mw:.1f}",
        ))
    return (
        "Figure 6 (measured). Power by application, simulated "
        "activity vs calibrated profiles (mW)\n"
        + render_table(
            ("Application", "Measured scaled", "Measured 1-V",
             "Analytical scaled", "Analytical 1-V"),
            rows,
        )
    )
