"""Figure 10: leakage sensitivity for Stereo Vision and MPEG4.

The paper's headline observation is the MPEG4 crossover: below
~14.8 mA/tile (8.3 nA/transistor) the 36-tile structure wins, above
it the 12-tile structure wins.
"""

from __future__ import annotations

from repro.power.report import render_table
from repro.tech.leakage import (
    LEAKAGE_SWEEP_MA_PER_TILE,
    per_transistor_na_for_tile_ma,
)
from repro.workloads.explorer import LeakageStudy
from repro.workloads.parallel import parallel_studies

PAPER_CROSSOVER_MA = 14.8


def compute() -> list:
    """LeakageSeries for every SV and MPEG4 configuration."""
    studies = parallel_studies()
    series = []
    for key in ("stereo", "mpeg4"):
        series.extend(LeakageStudy(studies[key]).series())
    return series


def mpeg4_crossover() -> dict:
    """The 12-vs-36-tile crossover current (and per-transistor nA)."""
    study = LeakageStudy(parallel_studies()["mpeg4"])
    crossover = study.crossover_ma(12, 36)
    return {
        "crossover_ma": crossover,
        "crossover_na_per_transistor": (
            per_transistor_na_for_tile_ma(crossover)
            if crossover else None
        ),
        "paper_ma": PAPER_CROSSOVER_MA,
    }


def render() -> str:
    """Figure 10 as a table plus the crossover summary."""
    series = compute()
    header = ["Configuration"] + [
        f"{ma:.1f}" for ma in LEAKAGE_SWEEP_MA_PER_TILE
    ]
    rows = [
        [s.label] + [f"{p:.0f}" for p in s.power_mw]
        for s in series
    ]
    crossing = mpeg4_crossover()
    lines = [
        "Figure 10. Leakage sensitivity for MPEG4, SV "
        "(power mW vs mA leakage per tile)",
        render_table(header, rows),
        "",
    ]
    if crossing["crossover_ma"] is None:
        lines.append("MPEG4 12 vs 36 tiles: no crossover found")
    else:
        lines.append(
            f"MPEG4 12 vs 36 tile crossover at "
            f"{crossing['crossover_ma']:.1f} mA/tile "
            f"({crossing['crossover_na_per_transistor']:.1f} nA/"
            f"transistor); paper: {crossing['paper_ma']} mA "
            f"(8.3 nA/transistor)."
        )
    return "\n".join(lines)
