"""Engine performance trajectory: reference vs compiled wall clock.

``python -m repro.eval.runner --engines`` times every benchmark
workload under the tick-accurate :class:`~repro.sim.engine.ReferenceEngine`
and the hyperperiod-compiled :class:`~repro.sim.engine.CompiledEngine`,
asserts their :class:`~repro.sim.stats.SimulationStats` are
bit-identical (the engine layer's standing contract) and emits the
``BENCH_engine.json`` artifact recording per-workload wall clocks and
speedup ratios - so the perf trajectory of the compiled fabric is
measured on every run instead of living in commit messages.

The workload set brackets the engine's operating range:

* ``fir`` - single column, divider 1, no DOU schedule (the floor: the
  compiled engine has nothing to stride over);
* ``wlan_acs`` - the Viterbi add-compare-select kernel with its
  neighbour-exchange DOU schedule (dense mode, strict schedules);
* ``mixed_dividers`` - compute-only columns at 8/16/32 off one
  reference (sparse mode, the hyperperiod jump table's home turf);
* ``ddc_pipeline`` - the Section 2 DDC front-end at paper-realistic
  column rates (24/40 MHz off 600 MHz): live compiled DOU schedules
  on both vertical buses and the horizontal bus (dense mode with
  stall batching and RECV-parked column batching);
* ``governed_burst`` - a bursty WLAN MCS scenario under the
  occupancy-PI governor (epoch windows, retunes, plan-cache reuse).

Wall-clock ratios are recorded per run, and full-size runs enforce
the conservative per-workload :data:`SPEEDUP_FLOORS` (the runner
exits non-zero below a floor); the tighter speedup bars live in
``benchmarks/test_engine_speedup.py`` where they can be skipped on
noisy CI runners.  The statistics equality assertions here always run
(``BENCH_SMOKE=1`` only shrinks the workload sizes and disables floor
enforcement, since tiny runs measure fixed costs, not striding).

``--profile`` adds one extra instrumented compiled run per workload
after the timing loops and attaches its per-phase wall-clock
attribution (compile, dense ticks, batched jumps, settlement, drain)
plus the runner/vectorizer event counters to each payload entry.

``--trace out.json`` re-runs the timeline-bearing workloads
(:data:`TRACE_WORKLOADS`) with the full telemetry bus subscribed and
exports one Chrome-trace/Perfetto JSON: per-clock-domain tracks with
window phases, divider rungs, relock-gated stretches, retune commits,
and governor decisions.  The traced runs happen *after* the timing
loops (sinks never contaminate the recorded wall clocks) and their
statistics are asserted bit-identical to the untraced runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.arch.chip import Chip, PORT_POSITION
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou_compiler import Transfer, compile_schedule
from repro.isa.assembler import assemble
from repro.sim.simulator import Simulator

#: Best-of repetitions per (workload, engine) timing.
REPEATS = 5

ENGINES = ("reference", "compiled")

#: Per-workload minimum compiled/reference speedup ratios.  These are
#: the *recorded floors* the runner enforces (``--engines`` exits
#: non-zero when a full-size run lands below its floor) - set with
#: headroom below the measured trajectory (fir ~6.7x, wlan_acs ~4.2x,
#: mixed_dividers ~45x, ddc_pipeline ~7x, governed_burst ~8.5x on the
#: development machine, warm caches, interleaved best-of timing) so
#: only a real regression trips them, never scheduler noise.  The
#: ddc_pipeline and governed_burst floors moved 3.0 -> 6.0/8.0 with
#: the lockstep round compiler, shared plan cache, and gated-prefix
#: orbit batching.  The tighter bars live in
#: ``benchmarks/test_engine_speedup.py``.  Smoke runs shrink the
#: workloads until fixed costs dominate, so floors are not enforced
#: under ``BENCH_SMOKE=1``.
SPEEDUP_FLOORS = {
    "fir": 3.5,
    "wlan_acs": 3.0,
    "mixed_dividers": 10.0,
    "ddc_pipeline": 6.0,
    "governed_burst": 8.0,
}


def _smoke() -> bool:
    return os.environ.get("BENCH_SMOKE", "") not in ("", "0")


# ----------------------------------------------------------------------
# workload builders
# ----------------------------------------------------------------------
def build_ddc_stream_chip(
    samples: int = 200, dividers: tuple = (25, 15)
) -> Chip:
    """The Section 2 DDC front-end with live DOUs on every bus.

    A producer column mixes memory-resident samples and streams them
    through its vertical bus, the horizontal bus, and the consumer's
    fan-out schedule into a four-tile integrator.  The default
    dividers put the columns at 24 and 40 MHz off the 600 MHz
    reference - the deeply divided operating points the paper's
    Table 3 applications actually use - while preserving the 5:3 rate
    ratio of the front-end plan.
    """
    producer = assemble(f"""
        tmask 0x1            ; tile 0 owns the output stream
        movi p0, 0
        loop {samples}
          ld r1, [p0++]
          lsl r1, r1, 1      ; x2 "mix"
          send r1
        endloop
        halt
    """, "producer")
    consumer = assemble(f"""
        movi r2, 0
        loop {samples}
          recv r1
          add r2, r2, r1     ; running integrator
        endloop
        halt
    """, "consumer")
    to_port = compile_schedule(
        [[Transfer(src=0, dsts=(PORT_POSITION,))]], name="to-port"
    )
    fan_out = compile_schedule(
        [[Transfer(src=PORT_POSITION, dsts=(0, 1, 2, 3))]],
        name="fan-out",
    )
    horizontal = compile_schedule(
        [[Transfer(src=0, dsts=(1,))]], n_positions=2, name="hbus"
    )
    config = ChipConfig(
        reference_mhz=600.0,
        columns=(ColumnConfig(divider=dividers[0]),
                 ColumnConfig(divider=dividers[1])),
        strict_schedules=False,
    )
    chip = Chip(config, programs=[producer, consumer],
                dou_programs=[to_port, fan_out],
                horizontal_dou=horizontal)
    chip.columns[0].tiles[0].load_memory(
        0, [(3 * i + 1) & 0xFFFF for i in range(samples)]
    )
    return chip


def _spin_program(iterations: int):
    return assemble(f"""
        movi r0, 0
        loop {iterations}
          addi r0, r0, 1
        endloop
        halt
    """, "spin")


def build_mixed_divider_chip(scale: int = 1) -> Chip:
    """Compute-only columns at dividers 8/16/32, staggered halts."""
    config = ChipConfig(
        reference_mhz=800.0,
        columns=(ColumnConfig(divider=8), ColumnConfig(divider=16),
                 ColumnConfig(divider=32)),
    )
    return Chip(config, programs=[
        _spin_program(1000 * scale), _spin_program(500 * scale),
        _spin_program(250 * scale),
    ])


#: (kernel name, size) -> prebuilt Kernel description.  Building a
#: kernel assembles its program and synthesizes its reference oracle -
#: identical for every timed repeat and not part of either engine's
#: work (``run_kernel`` builds a fresh chip per call and only reads
#: the description), so it is hoisted out of the timing loop.
_KERNELS: dict = {}


def _run_fir(engine: str):
    from repro.kernels.base import run_kernel
    from repro.kernels.fir import build_fir_kernel

    windows = 6 if _smoke() else 24
    kernel = _KERNELS.get(("fir", windows))
    if kernel is None:
        kernel = build_fir_kernel(windows=windows)
        _KERNELS[("fir", windows)] = kernel
    return run_kernel(kernel, engine=engine).stats


def _run_wlan_acs(engine: str):
    from repro.kernels.base import run_kernel
    from repro.kernels.viterbi_acs import build_acs_kernel

    steps = 8 if _smoke() else 64
    kernel = _KERNELS.get(("wlan_acs", steps))
    if kernel is None:
        kernel = build_acs_kernel(steps=steps)
        _KERNELS[("wlan_acs", steps)] = kernel
    return run_kernel(kernel, engine=engine).stats


def _run_mixed_dividers(engine: str):
    chip = build_mixed_divider_chip(scale=1)
    return Simulator(chip, engine=engine).run()


def _run_ddc_pipeline(engine: str):
    samples = 40 if _smoke() else 200
    chip = build_ddc_stream_chip(samples=samples)
    return Simulator(chip, engine=engine).run(max_ticks=1_000_000)


#: frame count -> prebuilt scenario.  ``wlan_mcs_scenario`` fits cubic
#: splines over the MCS trace; that construction is identical for every
#: timed repeat and is not part of either engine's work, so it is
#: hoisted out of the timing loop (``run_scenario`` builds a fresh chip
#: and harness per call and never mutates the scenario).
_SCENARIOS: dict = {}


def _run_governed_burst(engine: str):
    from repro.workloads.dvfs import run_scenario, wlan_mcs_scenario

    frames = 6 if _smoke() else 16
    scenario = _SCENARIOS.get(frames)
    if scenario is None:
        scenario = wlan_mcs_scenario(frames=frames)
        _SCENARIOS[frames] = scenario
    result = run_scenario(scenario, "occupancy_pi", engine=engine)
    return result.run.stats


#: workload key -> (description, runner(engine) -> SimulationStats)
WORKLOADS = {
    "fir": (
        "FIR kernel, single column, no DOU schedule",
        _run_fir,
    ),
    "wlan_acs": (
        "Viterbi ACS kernel with neighbour-exchange DOU schedule",
        _run_wlan_acs,
    ),
    "mixed_dividers": (
        "compute-only columns at dividers 8/16/32 (sparse mode)",
        _run_mixed_dividers,
    ),
    "ddc_pipeline": (
        "DDC front-end, live DOUs on every bus at 24/40 MHz",
        _run_ddc_pipeline,
    ),
    "governed_burst": (
        "bursty WLAN MCS scenario under the occupancy-PI governor",
        _run_governed_burst,
    ),
}


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def _profile_workload(key: str) -> dict:
    """One extra profiled compiled run; returns the phase attribution.

    Runs *after* the timing loops so ``perf_counter`` instrumentation
    never contaminates the recorded wall clocks.  Workload runners
    build their simulators internally, so the engine objects are
    collected through :data:`repro.sim.engine.PROFILE_REGISTRY`; a
    workload that builds several compiled engines (the governed
    scenario layer) has its snapshots summed field-wise.
    """
    from repro.sim import engine as engine_module

    _, runner = WORKLOADS[key]
    registry: list = []
    engine_module.PROFILE_REGISTRY = registry
    try:
        runner("compiled")
    finally:
        engine_module.PROFILE_REGISTRY = None
    merged: dict = {}
    for engine in registry:
        for field, value in engine.profile_snapshot().items():
            merged[field] = merged.get(field, 0) + value
    merged = {
        field: round(value, 6) if isinstance(value, float) else value
        for field, value in merged.items()
    }
    merged["engines"] = len(registry)
    return merged


def evaluate_workload(
    key: str, repeats: int = REPEATS, profile: bool = False
) -> dict:
    """Time one workload under both engines; assert identical stats.

    Returns ``{engine: best seconds}`` plus the cross-checked stats;
    with ``profile`` set, one extra instrumented compiled run is made
    after the timing loops and its phase attribution attached.
    """
    _, runner = WORKLOADS[key]
    timings = {engine: float("inf") for engine in ENGINES}
    stats = {}
    # One untimed warm-up per engine (imports, kernel/scenario and
    # plan caches), then the timed repeats interleave the engines so
    # CPU frequency drift over the loop biases both sides of the
    # ratio equally instead of whichever engine happened to run last.
    # Each timed run is preceded by an untimed run of the same engine:
    # interleaving means the other engine just evicted this engine's
    # hot paths from the instruction cache and branch predictors, and
    # the back-to-back pair re-warms them so the measurement reflects
    # the engine, not the alternation.
    for engine in ENGINES:
        stats[engine] = runner(engine)
    for _ in range(repeats):
        for engine in ENGINES:
            runner(engine)
            start = time.perf_counter()
            result = runner(engine)
            timings[engine] = min(
                timings[engine], time.perf_counter() - start
            )
            stats[engine] = result
    if stats["compiled"] != stats["reference"]:
        raise AssertionError(
            f"{key}: compiled engine statistics diverge from the "
            f"reference engine - the bit-identical contract is broken"
        )
    evaluation = {
        "timings": timings,
        "stats": stats["reference"],
    }
    if profile:
        evaluation["profile"] = _profile_workload(key)
    return evaluation


def evaluate_all(
    repeats: int = REPEATS, profile: bool = False
) -> dict:
    """{workload key: evaluation} for every benchmark workload."""
    return {
        key: evaluate_workload(key, repeats=repeats, profile=profile)
        for key in WORKLOADS
    }


def below_floor(evaluations: dict) -> list:
    """Workload keys whose measured speedup fell below their floor.

    Always empty under ``BENCH_SMOKE=1``: smoke shrinks the workloads
    until per-run fixed costs (chip build, plan compilation) dominate
    the wall clock, so the ratios stop measuring the striding fabric.
    """
    if _smoke():
        return []
    failed = []
    for key, evaluation in evaluations.items():
        floor = SPEEDUP_FLOORS.get(key)
        if floor is None:
            continue
        ratio = (
            evaluation["timings"]["reference"]
            / evaluation["timings"]["compiled"]
        )
        if ratio < floor:
            failed.append(key)
    return failed


def bench_payload(evaluations: dict | None = None) -> dict:
    """The ``BENCH_engine.json`` content."""
    evaluations = evaluations or evaluate_all()
    workloads = {}
    failed = set(below_floor(evaluations))
    for key, evaluation in evaluations.items():
        reference_s = evaluation["timings"]["reference"]
        compiled_s = evaluation["timings"]["compiled"]
        stats = evaluation["stats"]
        entry = {
            "description": WORKLOADS[key][0],
            "reference_s": round(reference_s, 6),
            "compiled_s": round(compiled_s, 6),
            "speedup": round(reference_s / compiled_s, 3),
            "floor": SPEEDUP_FLOORS.get(key),
            "below_floor": key in failed,
            "reference_ticks": stats.reference_ticks,
            "total_bus_words": stats.total_bus_words,
            "identical_stats": True,
        }
        if "profile" in evaluation:
            entry["profile"] = evaluation["profile"]
        workloads[key] = entry
    return {
        "artifact": "BENCH_engine",
        "description": "Reference vs compiled engine wall clock per "
                       "workload (bit-identical statistics asserted; "
                       "recorded floors enforced by the runner on "
                       "full-size runs, tighter bars in benchmarks/)",
        "smoke": _smoke(),
        "repeats": REPEATS,
        "workloads": workloads,
    }


def render(evaluations: dict | None = None) -> str:
    """Human-readable engine comparison table."""
    evaluations = evaluations or evaluate_all()
    header = (
        f"{'workload':<16} {'reference ms':>12} {'compiled ms':>12} "
        f"{'speedup':>8}  description"
    )
    lines = [header, "-" * len(header)]
    failed = set(below_floor(evaluations))
    for key, evaluation in evaluations.items():
        reference_s = evaluation["timings"]["reference"]
        compiled_s = evaluation["timings"]["compiled"]
        flag = "  [below floor]" if key in failed else ""
        lines.append(
            f"{key:<16} {reference_s * 1e3:>12.2f} "
            f"{compiled_s * 1e3:>12.2f} "
            f"{reference_s / compiled_s:>7.2f}x  "
            f"{WORKLOADS[key][0]}{flag}"
        )
    return "\n".join(lines)


# Headline compiled-engine counters for the --profile table, as
# (column label, profile_snapshot field) pairs.
_PROFILE_COLUMNS = (
    ("lockstep", "lockstep_batches"),
    ("orbits", "orbit_laps"),
    ("fused", "fused_runner_calls"),
    ("events", "batch_events"),
    ("batched", "batched_ticks"),
    ("dense", "dense_ticks"),
    ("parked", "parked_edges"),
    ("runs", "runner_calls"),
)


def render_profile(evaluations: dict) -> str:
    """Per-workload compiled-engine profile counter table.

    Empty when no evaluation carries a profile (the runner was invoked
    without ``--profile``).  The runner prints this *before* the floor
    check can raise, so a failing floor still ships the counters
    needed to diagnose which striding tier stopped engaging.
    """
    profiled = {
        key: evaluation["profile"]
        for key, evaluation in evaluations.items()
        if "profile" in evaluation
    }
    if not profiled:
        return ""
    header = f"{'workload':<16}" + "".join(
        f" {label:>9}" for label, _ in _PROFILE_COLUMNS
    )
    lines = [header, "-" * len(header)]
    for key, profile in profiled.items():
        lines.append(
            f"{key:<16}" + "".join(
                f" {profile.get(field, 0):>9}"
                for _, field in _PROFILE_COLUMNS
            )
        )
    return "\n".join(lines)


#: Workloads rendered onto the ``--trace`` timeline: the two that
#: exercise every per-domain track type - ddc_pipeline (live DOU
#: schedules, deep dividers, lockstep rounds) and governed_burst
#: (governor decisions, retune commits, relock gates).
TRACE_WORKLOADS = ("ddc_pipeline", "governed_burst")


def trace_workloads(
    path: str | Path, keys: tuple = TRACE_WORKLOADS
) -> dict:
    """Trace the selected workloads and write one Chrome-trace JSON.

    Each workload gets an untraced compiled run (warm-up plus a timed
    baseline) and then a fully subscribed run routed into its own
    process row of the trace.  The traced statistics are asserted
    bit-identical to the untraced ones - tracing observes, it never
    steers.  Returns the telemetry summary stamped into
    ``BENCH_engine.json``: event counts by kind/category, the
    traced/untraced wall-clock ratio per workload, and the artifact
    path.
    """
    from repro.obs import ChromeTraceBuilder, CountingSink, subscribed
    from repro.obs.export import write_chrome_trace

    builder = ChromeTraceBuilder()
    counts = CountingSink()
    overhead = {}
    for key in keys:
        _, runner = WORKLOADS[key]
        runner("compiled")  # warm caches off the measured runs
        start = time.perf_counter()
        baseline = runner("compiled")
        untraced_s = time.perf_counter() - start
        with subscribed(builder), subscribed(counts):
            builder.process(key)
            start = time.perf_counter()
            traced = runner("compiled")
            traced_s = time.perf_counter() - start
        if traced != baseline:
            raise AssertionError(
                f"{key}: tracing changed the simulation statistics - "
                f"the observe-only telemetry contract is broken"
            )
        overhead[key] = (
            round(traced_s / untraced_s, 3) if untraced_s > 0
            else None
        )
    write_chrome_trace(path, builder)
    summary = counts.summary()
    summary["overhead_ratio"] = overhead
    summary["workloads"] = list(keys)
    summary["trace"] = str(path)
    return summary


def write_bench(
    directory: str | Path = ".",
    payload: dict | None = None,
) -> Path:
    """Write ``BENCH_engine.json`` into ``directory``; returns the path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / "BENCH_engine.json"
    target.write_text(
        json.dumps(payload or bench_payload(), indent=2) + "\n"
    )
    return target
