"""Figure 8: Viterbi ACS power vs area across bus widths and tiles."""

from __future__ import annotations

from repro.power.report import render_table
from repro.workloads.explorer import ANCHOR_TILES, ViterbiBusStudy


def compute() -> list:
    """All (tiles, bus width) points, feasible or not."""
    return ViterbiBusStudy().sweep()


def knee_gain(points: list | None = None, n_tiles: int = 16) -> dict:
    """Power reduction per bus doubling around the 256-bit choice.

    The paper picks 256 bits because 128->256 still helps
    significantly while 256->512 helps much less (Section 5.3).
    """
    points = points if points is not None else compute()
    by_width = {
        p.bus_width_bits: p for p in points
        if p.n_tiles == n_tiles and p.feasible
    }
    gains = {}
    for narrow, wide in ((128, 256), (256, 512), (512, 1024)):
        if narrow in by_width and wide in by_width:
            gains[f"{narrow}->{wide}"] = (
                by_width[narrow].power_mw - by_width[wide].power_mw
            )
    return gains


def _point_rows(points: list) -> list:
    rows = []
    for point in points:
        if point.feasible:
            rows.append((
                point.n_tiles, point.bus_width_bits,
                f"{point.frequency_mhz:.0f}", f"{point.voltage_v:.1f}",
                f"{point.power_mw:.0f}", f"{point.area_mm2:.1f}",
            ))
        else:
            rows.append((
                point.n_tiles, point.bus_width_bits,
                f"{point.frequency_mhz:.0f}", "-", "infeasible",
                f"{point.area_mm2:.1f}",
            ))
    return rows


def render() -> str:
    """Figure 8 as a table plus the knee summary."""
    gains = knee_gain()
    lines = [
        "Figure 8. Viterbi ACS power with varying bus widths and "
        "parallelization",
        render_table(
            ("Tiles", "Bus bits", "MHz", "V", "Power (mW)",
             "Area (mm^2)"),
            _point_rows(compute()),
        ),
        "",
        "Power saved per bus doubling (16 tiles): " + ", ".join(
            f"{k}: {v:.0f} mW" for k, v in gains.items()
        ),
    ]
    return "\n".join(lines)


def measured_words_per_step(processes: int | None = 1) -> float:
    """ACS words per trellis step at 16 tiles, from counted transfers.

    The butterfly kernel runs one 4-tile column slice through
    :func:`repro.sim.batch.run_many`; the full 16-tile component
    replicates it across four columns, each driving its own vertical
    bus, so per-step traffic scales with the column count.
    """
    from repro.workloads.measured import measured_activities

    activity = measured_activities(
        ["viterbi-acs-butterfly"], processes=processes
    )["viterbi-acs-butterfly"]
    scaled = activity.scaled_to(ANCHOR_TILES)
    # words/step = words/cycle * cycles/step; the kernel processes
    # one trellis step per logical sample.
    from repro.kernels import build_acs_kernel

    steps = build_acs_kernel().samples
    return scaled.bus_words / steps


def compute_measured(processes: int | None = 1) -> list:
    """The Figure 8 sweep re-anchored on measured ACS traffic."""
    return ViterbiBusStudy(
        anchor_words_per_step=measured_words_per_step(processes)
    ).sweep()


def render_measured(processes: int | None = 1) -> str:
    """Figure 8 redrawn from the measured communication anchor."""
    calibrated = ViterbiBusStudy().anchor_words_per_step
    measured = measured_words_per_step(processes)
    points = ViterbiBusStudy(
        anchor_words_per_step=measured
    ).sweep()
    gains = knee_gain(points)
    lines = [
        "Figure 8 (measured). Viterbi ACS sweep anchored on counted "
        "transfers",
        f"anchor traffic: measured {measured:.1f} words/step vs "
        f"calibrated {calibrated:.1f} (Table 4 residual back-solve)",
        render_table(
            ("Tiles", "Bus bits", "MHz", "V", "Power (mW)",
             "Area (mm^2)"),
            _point_rows(points),
        ),
        "",
        "Power saved per bus doubling (16 tiles): " + ", ".join(
            f"{k}: {v:.0f} mW" for k, v in gains.items()
        ),
    ]
    return "\n".join(lines)
