"""Figure 8: Viterbi ACS power vs area across bus widths and tiles."""

from __future__ import annotations

from repro.power.report import render_table
from repro.workloads.explorer import ViterbiBusStudy


def compute() -> list:
    """All (tiles, bus width) points, feasible or not."""
    return ViterbiBusStudy().sweep()


def knee_gain(points: list | None = None, n_tiles: int = 16) -> dict:
    """Power reduction per bus doubling around the 256-bit choice.

    The paper picks 256 bits because 128->256 still helps
    significantly while 256->512 helps much less (Section 5.3).
    """
    points = points if points is not None else compute()
    by_width = {
        p.bus_width_bits: p for p in points
        if p.n_tiles == n_tiles and p.feasible
    }
    gains = {}
    for narrow, wide in ((128, 256), (256, 512), (512, 1024)):
        if narrow in by_width and wide in by_width:
            gains[f"{narrow}->{wide}"] = (
                by_width[narrow].power_mw - by_width[wide].power_mw
            )
    return gains


def render() -> str:
    """Figure 8 as a table plus the knee summary."""
    rows = []
    for point in compute():
        if point.feasible:
            rows.append((
                point.n_tiles, point.bus_width_bits,
                f"{point.frequency_mhz:.0f}", f"{point.voltage_v:.1f}",
                f"{point.power_mw:.0f}", f"{point.area_mm2:.1f}",
            ))
        else:
            rows.append((
                point.n_tiles, point.bus_width_bits,
                f"{point.frequency_mhz:.0f}", "-", "infeasible",
                f"{point.area_mm2:.1f}",
            ))
    gains = knee_gain()
    lines = [
        "Figure 8. Viterbi ACS power with varying bus widths and "
        "parallelization",
        render_table(
            ("Tiles", "Bus bits", "MHz", "V", "Power (mW)",
             "Area (mm^2)"),
            rows,
        ),
        "",
        "Power saved per bus doubling (16 tiles): " + ", ".join(
            f"{k}: {v:.0f} mW" for k, v in gains.items()
        ),
    ]
    return "\n".join(lines)
