"""Application suite (paper Section 3).

Four signal-processing applications drive the Synchroscalar design,
each too demanding for any 2004 commercial DSP: Digital Down
Conversion (GSM, 64 MS/s), Stereo Vision (Mars-Rover style, 256x256 @
10 f/s), an 802.11a OFDM receiver (54 Mbps), and an MPEG-4 encoder
(QCIF/CIF @ 30 f/s) - plus the AES message-authentication code the
paper composes with 802.11a in Section 5.1.

Every stage is implemented functionally (numerically faithful Python)
so end-to-end correctness is testable; per-stage cycle costs and
communication profiles for the power methodology live in
:mod:`repro.workloads`.
"""
