"""Synthetic video sequences and quality metrics."""

from __future__ import annotations

import numpy as np
from scipy import ndimage


def psnr(reference: np.ndarray, reconstructed: np.ndarray,
         peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (infinite for exact match)."""
    reference = np.asarray(reference, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if reference.shape != reconstructed.shape:
        raise ValueError("frames must share a shape")
    mse = float(np.mean((reference - reconstructed) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)


def synthetic_sequence(
    n_frames: int,
    shape: tuple = (144, 176),
    motion_per_frame: tuple = (1, 2),
    n_blobs: int = 30,
    seed: int = 0,
) -> np.ndarray:
    """Frames of textured blobs translating uniformly (global pan).

    Uniform translation makes the true motion known, so motion-
    estimation tests can assert the recovered vectors.
    Returns an array of shape (n_frames, height, width) in 0..255.
    """
    if n_frames < 1:
        raise ValueError("need at least one frame")
    rng = np.random.default_rng(seed)
    height, width = shape
    dy, dx = motion_per_frame
    margin_y = abs(dy) * n_frames + 8
    margin_x = abs(dx) * n_frames + 8
    canvas = np.zeros((height + 2 * margin_y, width + 2 * margin_x))
    rows = rng.integers(0, canvas.shape[0], size=n_blobs)
    cols = rng.integers(0, canvas.shape[1], size=n_blobs)
    canvas[rows, cols] = rng.uniform(120, 255, size=n_blobs)
    canvas = ndimage.gaussian_filter(canvas, sigma=3.0)
    canvas *= 255.0 / max(canvas.max(), 1e-12)

    frames = np.empty((n_frames, height, width))
    for index in range(n_frames):
        top = margin_y + index * dy
        left = margin_x + index * dx
        frames[index] = canvas[top:top + height, left:left + width]
    return frames
