"""Bit-cost estimation: zigzag scan, run-length, exp-Golomb.

The paper's encoder stops at quantization (ME + DCT + Q are ~90% of
the computation [36]); for realistic rate numbers we add the standard
coefficient-coding pipeline as an estimator: zigzag-order each block,
run-length encode the (run, level) pairs, and charge exp-Golomb code
lengths.  This gives the per-frame bit estimates a rate controller
would consume without implementing a full bitstream writer.
"""

from __future__ import annotations

import numpy as np

from repro.apps.mpeg4.dct import BLOCK


def zigzag_order(n: int = BLOCK) -> np.ndarray:
    """Indices of the classic zigzag scan over an n x n block."""
    # Odd anti-diagonals run top-right to bottom-left (row ascending),
    # even ones bottom-left to top-right (column ascending).
    order = sorted(
        ((row, col) for row in range(n) for col in range(n)),
        key=lambda rc: (
            rc[0] + rc[1],
            rc[0] if (rc[0] + rc[1]) % 2 else rc[1],
        ),
    )
    return np.array([row * n + col for row, col in order],
                    dtype=np.intp)


_ZIGZAG = zigzag_order(BLOCK)


def zigzag_scan(block: np.ndarray) -> np.ndarray:
    """Flatten an 8x8 block in zigzag order."""
    block = np.asarray(block)
    if block.shape != (BLOCK, BLOCK):
        raise ValueError(f"block must be {BLOCK}x{BLOCK}")
    return block.ravel()[_ZIGZAG]


def run_length_pairs(scanned: np.ndarray) -> list:
    """(zero-run, level) pairs over a zigzag-scanned block.

    Trailing zeros are not coded (an end-of-block marker's cost is
    charged separately by the estimator).
    """
    pairs = []
    run = 0
    for level in np.asarray(scanned).tolist():
        if level == 0:
            run += 1
            continue
        pairs.append((run, int(level)))
        run = 0
    return pairs


def exp_golomb_bits(value: int) -> int:
    """Signed exp-Golomb code length for ``value``."""
    mapped = 2 * value - 1 if value > 0 else -2 * value
    return 2 * (mapped + 1).bit_length() - 1


EOB_BITS = 2  # end-of-block marker


def block_bits(levels: np.ndarray) -> int:
    """Estimated coded bits for one quantized block."""
    scanned = zigzag_scan(levels)
    total = EOB_BITS
    for run, level in run_length_pairs(scanned):
        total += exp_golomb_bits(run + 1) + exp_golomb_bits(level)
    return total


def motion_vector_bits(dy: int, dx: int) -> int:
    """Estimated bits for one motion vector."""
    return exp_golomb_bits(dy) + exp_golomb_bits(dx)


def frame_bits(
    block_levels: list,
    motion_vectors: dict | None = None,
) -> int:
    """Estimated bits for a frame's blocks plus its motion field."""
    total = sum(block_bits(levels) for levels in block_levels)
    if motion_vectors:
        total += sum(
            motion_vector_bits(vector.dy, vector.dx)
            for vector in motion_vectors.values()
        )
    return total
