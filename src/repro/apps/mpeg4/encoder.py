"""The MPEG-4 encoder loop: ME -> DCT -> Quant -> IQ -> IDCT.

I-frames transform and quantize every block; P-frames motion-
compensate against the reconstructed previous frame and code the
residual.  The encoder reconstructs each frame exactly as a decoder
would, so drift-free PSNR is measurable.  QCIF (176x144) and CIF
(352x288) at 30 f/s are the paper's two operating points (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.mpeg4.dct import BLOCK, blockwise, dct2, idct2
from repro.apps.mpeg4.entropy import frame_bits
from repro.apps.mpeg4.frames import psnr
from repro.apps.mpeg4.motion import (
    MACROBLOCK,
    full_search,
    motion_compensate,
    three_step_search,
)
from repro.apps.mpeg4.quant import coded_coefficient_count, dequantize, quantize
from repro.sdf.graph import SdfGraph

QCIF_SHAPE = (144, 176)
CIF_SHAPE = (288, 352)
FRAME_RATE_FPS = 30.0


@dataclass(frozen=True)
class EncodedFrame:
    """Reconstruction and statistics for one encoded frame."""

    index: int
    frame_type: str              # "I" or "P"
    reconstruction: np.ndarray
    psnr_db: float
    coded_coefficients: int
    motion_vectors: dict         # empty for I frames
    residual_energy: float
    estimated_bits: int = 0

    @property
    def estimated_kbps_at(self) -> float:
        """Bit rate in kbit/s if every frame cost this much at 30 f/s."""
        return self.estimated_bits * FRAME_RATE_FPS / 1000.0


class Mpeg4Encoder:
    """A drift-free I/P encoder over 8-bit grayscale frames."""

    def __init__(
        self,
        shape: tuple = QCIF_SHAPE,
        qp: int = 8,
        gop: int = 12,
        search_range: int = 7,
        motion_search: str = "full",
    ) -> None:
        height, width = shape
        if height % MACROBLOCK or width % MACROBLOCK:
            raise ValueError(
                "frame dimensions must be multiples of the macroblock"
            )
        if motion_search not in ("full", "three_step"):
            raise ValueError("motion_search must be 'full' or 'three_step'")
        if gop < 1:
            raise ValueError("gop must be >= 1")
        self.shape = shape
        self.qp = qp
        self.gop = gop
        self.search_range = search_range
        self.motion_search = motion_search
        self._reference: np.ndarray | None = None
        self._frame_index = 0

    def reset(self) -> None:
        """Forget the reference frame (forces the next frame intra)."""
        self._reference = None
        self._frame_index = 0

    def _transform_quantize(
        self, frame: np.ndarray, intra: bool
    ) -> tuple:
        """Blockwise DCT+Q+IQ+IDCT; returns (recon, coded, levels)."""
        coded = 0
        all_levels = []

        def roundtrip(block: np.ndarray) -> np.ndarray:
            nonlocal coded
            levels = quantize(dct2(block), self.qp, intra=intra)
            coded += coded_coefficient_count(levels)
            all_levels.append(levels)
            return idct2(dequantize(levels, self.qp, intra=intra))

        return blockwise(frame, roundtrip), coded, all_levels

    def _estimate_motion(self, frame: np.ndarray) -> dict:
        search = (full_search if self.motion_search == "full"
                  else three_step_search)
        vectors = {}
        height, width = self.shape
        for row in range(0, height, MACROBLOCK):
            for col in range(0, width, MACROBLOCK):
                vectors[(row, col)] = search(
                    frame, self._reference, row, col,
                    search_range=self.search_range,
                )
        return vectors

    def encode_frame(self, frame: np.ndarray) -> EncodedFrame:
        """Encode one frame, updating the reconstruction reference."""
        frame = np.asarray(frame, dtype=np.float64)
        if frame.shape != self.shape:
            raise ValueError(
                f"expected {self.shape} frame, got {frame.shape}"
            )
        index = self._frame_index
        intra = self._reference is None or index % self.gop == 0
        if intra:
            reconstruction, coded, levels = self._transform_quantize(
                frame, intra=True
            )
            vectors: dict = {}
            residual_energy = 0.0
        else:
            vectors = self._estimate_motion(frame)
            predicted = motion_compensate(self._reference, vectors)
            residual = frame - predicted
            residual_energy = float(np.sum(residual * residual))
            coded_residual, coded, levels = self._transform_quantize(
                residual, intra=False
            )
            reconstruction = predicted + coded_residual
        reconstruction = np.clip(reconstruction, 0.0, 255.0)
        self._reference = reconstruction
        self._frame_index += 1
        return EncodedFrame(
            index=index,
            frame_type="I" if intra else "P",
            reconstruction=reconstruction,
            psnr_db=psnr(frame, reconstruction),
            coded_coefficients=coded,
            motion_vectors=vectors,
            residual_energy=residual_energy,
            estimated_bits=frame_bits(levels, vectors),
        )

    def encode_sequence(self, frames: np.ndarray) -> list:
        """Encode frames in order, returning per-frame results."""
        return [self.encode_frame(frame) for frame in frames]


#: Calibrated per-firing costs (one tile); one iteration = one frame
#: at 30 f/s (0.03 M iterations/s... expressed as 3e-2 msps).  QCIF
#: anchors (Table 4): ME 8 tiles @ 70 MHz -> 18.67e6 cycles/frame;
#: DCT/Q/IQ/IDCT 2 tiles @ 60 MHz -> 4e6 cycles/frame.  CIF anchors:
#: ME 8 tiles @ 280 MHz -> 74.67e6; DCT 8 tiles @ 60 MHz -> 16e6.
MPEG4_ACTOR_CYCLES = {
    "qcif_me": 56.0e6 / 3.0,    # 18.667M cycles/frame
    "qcif_dct": 4.0e6,
    "cif_me": 224.0e6 / 3.0,    # 74.667M cycles/frame
    "cif_dct": 16.0e6,
}


def mpeg4_sdf_graph(profile: str = "qcif") -> SdfGraph:
    """ME -> DCT chain for one encoder profile ('qcif' or 'cif')."""
    if profile not in ("qcif", "cif"):
        raise ValueError("profile must be 'qcif' or 'cif'")
    graph = SdfGraph(f"mpeg4_{profile}")
    graph.add_actor("me", MPEG4_ACTOR_CYCLES[f"{profile}_me"])
    graph.add_actor("dct", MPEG4_ACTOR_CYCLES[f"{profile}_dct"])
    graph.add_edge("me", "dct", produce=1, consume=1)
    return graph
