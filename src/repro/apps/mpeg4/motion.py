"""Block motion estimation and compensation.

Motion estimation dominates the MPEG-4 encoder (8 of the 10 QCIF
tiles in Table 4).  We provide exhaustive full search - the quality
reference and the regular dataflow a SIMD column likes - and the
classic three-step search as the cheap alternative the ablation
benchmark compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

MACROBLOCK = 16


@dataclass(frozen=True)
class MotionVector:
    """Displacement (dy, dx) of the best reference block and its SAD."""

    dy: int
    dx: int
    sad: float


def sad(block_a: np.ndarray, block_b: np.ndarray) -> float:
    """Sum of absolute differences between two equal-shape blocks."""
    a = np.asarray(block_a, dtype=np.float64)
    b = np.asarray(block_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("blocks must share a shape")
    return float(np.abs(a - b).sum())


def _candidate(reference: np.ndarray, row: int, col: int,
               size: int) -> np.ndarray | None:
    height, width = reference.shape
    if row < 0 or col < 0 or row + size > height or col + size > width:
        return None
    return reference[row:row + size, col:col + size]


def full_search(
    current: np.ndarray,
    reference: np.ndarray,
    row: int,
    col: int,
    search_range: int = 7,
    block_size: int = MACROBLOCK,
) -> MotionVector:
    """Exhaustive search over +/- search_range around (row, col)."""
    block = np.asarray(current, dtype=np.float64)[
        row:row + block_size, col:col + block_size
    ]
    best = MotionVector(0, 0, np.inf)
    for dy in range(-search_range, search_range + 1):
        for dx in range(-search_range, search_range + 1):
            candidate = _candidate(reference, row + dy, col + dx,
                                   block_size)
            if candidate is None:
                continue
            cost = sad(block, candidate)
            if cost < best.sad or (
                cost == best.sad and (abs(dy) + abs(dx))
                < (abs(best.dy) + abs(best.dx))
            ):
                best = MotionVector(dy, dx, cost)
    return best


def three_step_search(
    current: np.ndarray,
    reference: np.ndarray,
    row: int,
    col: int,
    search_range: int = 7,
    block_size: int = MACROBLOCK,
) -> MotionVector:
    """Logarithmic search: ~25 SADs instead of (2r+1)^2."""
    block = np.asarray(current, dtype=np.float64)[
        row:row + block_size, col:col + block_size
    ]
    center_dy, center_dx = 0, 0
    initial = _candidate(reference, row, col, block_size)
    best_sad = sad(block, initial) if initial is not None else np.inf
    step = max(1, (search_range + 1) // 2)
    while step >= 1:
        improved = None
        for dy in (-step, 0, step):
            for dx in (-step, 0, step):
                if dy == 0 and dx == 0:
                    continue
                total_dy, total_dx = center_dy + dy, center_dx + dx
                if max(abs(total_dy), abs(total_dx)) > search_range:
                    continue
                candidate = _candidate(
                    reference, row + total_dy, col + total_dx, block_size
                )
                if candidate is None:
                    continue
                cost = sad(block, candidate)
                if cost < best_sad:
                    best_sad = cost
                    improved = (total_dy, total_dx)
        if improved is not None:
            center_dy, center_dx = improved
        step //= 2
    return MotionVector(center_dy, center_dx, best_sad)


def motion_compensate(
    reference: np.ndarray,
    vectors: dict,
    block_size: int = MACROBLOCK,
) -> np.ndarray:
    """Predicted frame from per-block motion vectors.

    ``vectors`` maps (row, col) of each block origin to its
    :class:`MotionVector`.
    """
    reference = np.asarray(reference, dtype=np.float64)
    predicted = np.zeros_like(reference)
    for (row, col), vector in vectors.items():
        source = _candidate(
            reference, row + vector.dy, col + vector.dx, block_size
        )
        if source is None:
            raise ValueError(
                f"vector {vector} at ({row}, {col}) leaves the frame"
            )
        predicted[row:row + block_size, col:col + block_size] = source
    return predicted
