"""Simple proportional rate control over the bit estimator.

With per-frame bit estimates available (``EncodedFrame.estimated_bits``)
a rate controller closes the loop the way an embedded encoder would:
scale QP by the ratio of spent to budgeted bits, clamped to the legal
1..31 range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.mpeg4.encoder import FRAME_RATE_FPS, Mpeg4Encoder


@dataclass
class RateController:
    """Proportional QP adaptation toward a target bit rate."""

    target_kbps: float
    fps: float = FRAME_RATE_FPS
    qp: int = 8
    min_qp: int = 1
    max_qp: int = 31
    gain: float = 0.6

    def __post_init__(self) -> None:
        if self.target_kbps <= 0 or self.fps <= 0:
            raise ValueError("target rate and fps must be positive")
        if not self.min_qp <= self.qp <= self.max_qp:
            raise ValueError("initial qp outside [min_qp, max_qp]")

    @property
    def budget_bits_per_frame(self) -> float:
        """Bits one frame may spend at the target rate."""
        return self.target_kbps * 1000.0 / self.fps

    def update(self, spent_bits: int) -> int:
        """Adapt QP from one frame's spend; returns the next QP."""
        if spent_bits < 0:
            raise ValueError("spent bits must be non-negative")
        ratio = max(spent_bits, 1.0) / self.budget_bits_per_frame
        adjusted = self.qp * (ratio ** self.gain)
        self.qp = int(round(
            min(self.max_qp, max(self.min_qp, adjusted))
        ))
        return self.qp


def encode_with_rate_control(
    encoder: Mpeg4Encoder,
    frames,
    controller: RateController,
) -> list:
    """Encode a sequence while the controller steers QP per frame."""
    results = []
    for frame in frames:
        encoder.qp = controller.qp
        result = encoder.encode_frame(frame)
        controller.update(result.estimated_bits)
        results.append(result)
    return results
