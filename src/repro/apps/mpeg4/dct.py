"""8x8 two-dimensional DCT (type II) and its inverse.

The separable orthonormal form: D = C X C^T with the standard DCT-II
basis matrix, applied as a row pass then a column pass - the same
decomposition a tile column executes (one pass per tile group).
"""

from __future__ import annotations

import numpy as np

BLOCK = 8


def dct_matrix(n: int = BLOCK) -> np.ndarray:
    """Orthonormal DCT-II basis matrix C (rows are basis vectors)."""
    if n < 1:
        raise ValueError("n must be positive")
    k = np.arange(n).reshape(-1, 1)
    i = np.arange(n).reshape(1, -1)
    matrix = np.cos(np.pi * (2 * i + 1) * k / (2.0 * n))
    matrix *= np.sqrt(2.0 / n)
    matrix[0, :] = 1.0 / np.sqrt(n)
    return matrix


_C = dct_matrix(BLOCK)


def dct2(block: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of one 8x8 block."""
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (BLOCK, BLOCK):
        raise ValueError(f"block must be {BLOCK}x{BLOCK}")
    return _C @ block @ _C.T


def idct2(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of one 8x8 coefficient block."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.shape != (BLOCK, BLOCK):
        raise ValueError(f"block must be {BLOCK}x{BLOCK}")
    return _C.T @ coefficients @ _C


def blockwise(frame: np.ndarray, transform) -> np.ndarray:
    """Apply an 8x8 block transform across a whole frame."""
    frame = np.asarray(frame, dtype=np.float64)
    height, width = frame.shape
    if height % BLOCK or width % BLOCK:
        raise ValueError("frame dimensions must be multiples of 8")
    out = np.empty_like(frame)
    for row in range(0, height, BLOCK):
        for col in range(0, width, BLOCK):
            out[row:row + BLOCK, col:col + BLOCK] = transform(
                frame[row:row + BLOCK, col:col + BLOCK]
            )
    return out
