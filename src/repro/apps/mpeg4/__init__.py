"""MPEG-4 video encoder core (paper Section 3).

The paper implements the three stages that dominate an MPEG-4 video
encoder's computation (~90% per Stechele [36]): block motion
estimation, the 8x8 DCT, and quantization - plus the inverse
quantization/IDCT reconstruction loop - at QCIF (176x144) and CIF
(352x288), 30 frames per second.
"""

from repro.apps.mpeg4.dct import dct2, idct2, dct_matrix
from repro.apps.mpeg4.quant import quantize, dequantize
from repro.apps.mpeg4.motion import (
    MotionVector,
    full_search,
    motion_compensate,
    sad,
    three_step_search,
)
from repro.apps.mpeg4.encoder import (
    EncodedFrame,
    Mpeg4Encoder,
    CIF_SHAPE,
    QCIF_SHAPE,
)
from repro.apps.mpeg4.frames import psnr, synthetic_sequence

__all__ = [
    "dct2",
    "idct2",
    "dct_matrix",
    "quantize",
    "dequantize",
    "MotionVector",
    "sad",
    "full_search",
    "three_step_search",
    "motion_compensate",
    "Mpeg4Encoder",
    "EncodedFrame",
    "QCIF_SHAPE",
    "CIF_SHAPE",
    "psnr",
    "synthetic_sequence",
]
