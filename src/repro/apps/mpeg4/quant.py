"""Quantization / inverse quantization (H.263-style, as MPEG-4 SP uses).

Uniform mid-tread quantization with step 2*QP; intra DC coefficients
use a fixed step of 8 to protect the block average.  The encoder's
reconstruction loop uses exactly these functions so encoder and
implicit decoder stay in sync.
"""

from __future__ import annotations

import numpy as np

INTRA_DC_STEP = 8.0


def quantize(
    coefficients: np.ndarray, qp: int, intra: bool = True
) -> np.ndarray:
    """Quantize one block of DCT coefficients to integer levels."""
    if not 1 <= qp <= 31:
        raise ValueError("qp must lie in 1..31")
    coefficients = np.asarray(coefficients, dtype=np.float64)
    step = 2.0 * qp
    levels = np.round(coefficients / step).astype(np.int32)
    if intra:
        levels[0, 0] = int(np.round(coefficients[0, 0] / INTRA_DC_STEP))
    return levels


def dequantize(
    levels: np.ndarray, qp: int, intra: bool = True
) -> np.ndarray:
    """Reconstruct coefficient values from quantized levels."""
    if not 1 <= qp <= 31:
        raise ValueError("qp must lie in 1..31")
    levels = np.asarray(levels, dtype=np.float64)
    out = levels * 2.0 * qp
    if intra:
        out[0, 0] = levels[0, 0] * INTRA_DC_STEP
    return out


def coded_coefficient_count(levels: np.ndarray) -> int:
    """Nonzero levels in a block - the proxy for coded bits."""
    return int(np.count_nonzero(levels))
