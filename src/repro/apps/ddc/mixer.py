"""Digital mixer: the multiply that shifts the signal to baseband.

The mixer multiplies the real IF input by the NCO's complex local
oscillator, translating the band of interest to DC.  In the paper's
Table 4 mapping this stage runs on 8 tiles at 120 MHz / 0.8 V.
"""

from __future__ import annotations

import numpy as np

from repro.apps.ddc.nco import NumericallyControlledOscillator


class DigitalMixer:
    """Complex down-mixing against an NCO."""

    def __init__(self, nco: NumericallyControlledOscillator) -> None:
        self.nco = nco
        self.samples_processed = 0

    def process(self, block: np.ndarray) -> np.ndarray:
        """Mix one block of real (or complex) IF samples to baseband."""
        block = np.asarray(block)
        lo = self.nco.samples(len(block))
        self.samples_processed += len(block)
        return block * lo

    def reset(self) -> None:
        """Restart the oscillator phase and counters."""
        self.nco.reset()
        self.samples_processed = 0
