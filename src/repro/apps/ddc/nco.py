"""Numerically Controlled Oscillator.

A classical phase-accumulator NCO: a 32-bit accumulator advances by a
tuning word each sample and the top bits index a sine lookup table,
producing the complex local-oscillator samples the digital mixer
multiplies against.  This is the first stage of the GC4014-style DDC.
"""

from __future__ import annotations

import numpy as np

PHASE_BITS = 32
_PHASE_MODULUS = 1 << PHASE_BITS


class NumericallyControlledOscillator:
    """Phase-accumulator oscillator with a shared sine LUT.

    Parameters
    ----------
    frequency_hz:
        Oscillator frequency (the IF being mixed down).
    sample_rate_hz:
        Input sample rate (64 MS/s for the GSM configuration).
    lut_bits:
        log2 of the sine-table depth; 10 bits (1024 entries) is the
        classic size balancing spur level against table memory.
    """

    def __init__(
        self,
        frequency_hz: float,
        sample_rate_hz: float,
        lut_bits: int = 10,
    ) -> None:
        if sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        if not 0 <= abs(frequency_hz) < sample_rate_hz:
            raise ValueError("|frequency| must lie below the sample rate")
        if not 4 <= lut_bits <= 16:
            raise ValueError("lut_bits must lie in [4, 16]")
        self.frequency_hz = frequency_hz
        self.sample_rate_hz = sample_rate_hz
        self.lut_bits = lut_bits
        self.tuning_word = int(round(
            frequency_hz / sample_rate_hz * _PHASE_MODULUS
        )) % _PHASE_MODULUS
        self._phase = 0
        depth = 1 << lut_bits
        angles = 2.0 * np.pi * np.arange(depth) / depth
        self._sin_lut = np.sin(angles)
        self._cos_lut = np.cos(angles)

    @property
    def actual_frequency_hz(self) -> float:
        """The quantized frequency the tuning word realizes."""
        return self.tuning_word / _PHASE_MODULUS * self.sample_rate_hz

    @property
    def frequency_resolution_hz(self) -> float:
        """Smallest representable frequency step."""
        return self.sample_rate_hz / _PHASE_MODULUS

    def reset(self, phase: int = 0) -> None:
        """Reset the accumulator."""
        self._phase = phase % _PHASE_MODULUS

    def samples(self, count: int) -> np.ndarray:
        """The next ``count`` complex LO samples exp(-j*2*pi*f*n)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        phases = (self._phase + self.tuning_word * np.arange(count,
                  dtype=np.uint64)) % _PHASE_MODULUS
        self._phase = int(
            (self._phase + self.tuning_word * count) % _PHASE_MODULUS
        )
        indices = (phases >> (PHASE_BITS - self.lut_bits)).astype(np.intp)
        # Down-conversion uses the conjugate oscillator.
        return self._cos_lut[indices] - 1j * self._sin_lut[indices]
