"""Digital Down Conversion (paper Section 3).

The DDC converts a received IF signal to baseband at GSM rates (up to
64 MS/s): a Numerically Controlled Oscillator and digital mixer,
a Cascaded-Integrator-Comb decimator, then a two-stage programmable
filter - a 21-tap CIC-compensating FIR (CFIR) and a 63-tap
programmable FIR (PFIR), mirroring the Graychip GC4014 structure the
paper compares against.
"""

from repro.apps.ddc.nco import NumericallyControlledOscillator
from repro.apps.ddc.mixer import DigitalMixer
from repro.apps.ddc.cic import CicDecimator, cic_gain, boxcar_reference
from repro.apps.ddc.fir import (
    FirDecimator,
    design_cic_compensator,
    design_lowpass,
)
from repro.apps.ddc.pipeline import DigitalDownConverter, gsm_configuration

__all__ = [
    "NumericallyControlledOscillator",
    "DigitalMixer",
    "CicDecimator",
    "cic_gain",
    "boxcar_reference",
    "FirDecimator",
    "design_lowpass",
    "design_cic_compensator",
    "DigitalDownConverter",
    "gsm_configuration",
]
