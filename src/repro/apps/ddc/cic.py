"""Cascaded-Integrator-Comb decimation filter.

An N-stage CIC decimator is N integrators at the input rate, an
R-fold downsampler, and N combs (differentiators with differential
delay M) at the output rate.  Its impulse response equals an N-fold
cascade of R*M-wide boxcars, which gives the exact reference used by
the property tests.  The paper's Table 4 splits the CIC across an
integrator component (8 tiles @ 200 MHz) and a comb component
(2 tiles @ 40 MHz) because the comb runs at the decimated rate.

Arithmetic is exact (Python integers model the wrap-free two's
complement registers sized per Hogenauer's bound).
"""

from __future__ import annotations

import numpy as np


def cic_gain(stages: int, decimation: int, diff_delay: int = 1) -> int:
    """DC gain (R*M)^N of the filter."""
    if stages < 1 or decimation < 1 or diff_delay < 1:
        raise ValueError("stages, decimation, diff_delay must be >= 1")
    return (decimation * diff_delay) ** stages


def boxcar_reference(
    signal: np.ndarray, stages: int, decimation: int, diff_delay: int = 1
) -> np.ndarray:
    """Reference CIC output: N boxcar convolutions then decimation.

    Matches :class:`CicDecimator` exactly on integer inputs (the CIC
    recursion is algebraically identical to this cascade).
    """
    kernel = np.ones(decimation * diff_delay, dtype=np.int64)
    filtered = np.asarray(signal, dtype=np.int64)
    for _ in range(stages):
        filtered = np.convolve(filtered, kernel)
    # The streaming decimator emits on phases 0, R, 2R, ... so it
    # produces ceil(len/R) samples.
    count = -(-len(signal) // decimation)
    return filtered[::decimation][:count]


class CicDecimator:
    """Streaming N-stage CIC decimator over integer samples."""

    def __init__(
        self, stages: int = 4, decimation: int = 16, diff_delay: int = 1
    ) -> None:
        if stages < 1 or decimation < 1 or diff_delay < 1:
            raise ValueError("stages, decimation, diff_delay must be >= 1")
        self.stages = stages
        self.decimation = decimation
        self.diff_delay = diff_delay
        self._integrators = [0] * stages
        self._comb_delays = [[0] * diff_delay for _ in range(stages)]
        self._phase = 0
        self.samples_in = 0
        self.samples_out = 0

    @property
    def gain(self) -> int:
        """DC gain of the cascade."""
        return cic_gain(self.stages, self.decimation, self.diff_delay)

    def reset(self) -> None:
        """Clear all filter state."""
        self._integrators = [0] * self.stages
        self._comb_delays = [
            [0] * self.diff_delay for _ in range(self.stages)
        ]
        self._phase = 0
        self.samples_in = 0
        self.samples_out = 0

    def integrate(self, block: np.ndarray) -> np.ndarray:
        """Run only the integrator cascade (the 200 MHz component)."""
        out = np.empty(len(block), dtype=object)
        for index, sample in enumerate(np.asarray(block)):
            value = int(sample)
            for stage in range(self.stages):
                self._integrators[stage] += value
                value = self._integrators[stage]
            out[index] = value
        return out

    def comb(self, block: np.ndarray) -> np.ndarray:
        """Run only the comb cascade at the decimated rate."""
        out = np.empty(len(block), dtype=object)
        for index, sample in enumerate(block):
            value = int(sample)
            for stage in range(self.stages):
                delayed = self._comb_delays[stage].pop(0)
                self._comb_delays[stage].append(value)
                value = value - delayed
            out[index] = value
        return out

    def process(self, block: np.ndarray) -> np.ndarray:
        """Full integrate -> decimate -> comb over one block."""
        integrated = self.integrate(block)
        self.samples_in += len(block)
        keep = []
        for sample in integrated:
            if self._phase == 0:
                keep.append(sample)
            self._phase = (self._phase + 1) % self.decimation
        if not keep:
            return np.array([], dtype=np.int64)
        combed = self.comb(np.array(keep, dtype=object))
        self.samples_out += len(combed)
        return combed.astype(np.int64)
