"""The complete Digital Down Converter and its SDF description.

The GSM configuration matches the paper: 64 MS/s input, a 4-stage
CIC decimating by 16, the 21-tap CFIR decimating by 2, and the 63-tap
PFIR decimating by 2, for a 1 MS/s complex baseband output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.ddc.cic import CicDecimator
from repro.apps.ddc.fir import FirDecimator, design_cic_compensator, design_lowpass
from repro.apps.ddc.mixer import DigitalMixer
from repro.apps.ddc.nco import NumericallyControlledOscillator
from repro.sdf.graph import SdfGraph


@dataclass(frozen=True)
class DdcConfiguration:
    """Static parameters of one DDC instance."""

    sample_rate_hz: float = 64.0e6
    mix_frequency_hz: float = 16.0e6
    cic_stages: int = 4
    cic_decimation: int = 16
    cfir_taps: int = 21
    cfir_decimation: int = 2
    pfir_taps: int = 63
    pfir_decimation: int = 2

    @property
    def total_decimation(self) -> int:
        """Input samples per output sample (64 for GSM)."""
        return (self.cic_decimation * self.cfir_decimation
                * self.pfir_decimation)

    @property
    def output_rate_hz(self) -> float:
        """Baseband output rate."""
        return self.sample_rate_hz / self.total_decimation


def gsm_configuration() -> DdcConfiguration:
    """The paper's 64 MS/s GSM operating point."""
    return DdcConfiguration()


class DigitalDownConverter:
    """NCO/mixer -> CIC -> CFIR -> PFIR processing chain.

    The CIC path runs separately on I and Q (integer arithmetic after
    scaling the mixed signal), then the FIR stages filter the complex
    stream.
    """

    # Fixed-point scale applied to the mixed signal before the integer CIC.
    CIC_INPUT_SCALE = 1 << 14

    def __init__(self, config: DdcConfiguration | None = None) -> None:
        self.config = config or gsm_configuration()
        cfg = self.config
        nco = NumericallyControlledOscillator(
            cfg.mix_frequency_hz, cfg.sample_rate_hz
        )
        self.mixer = DigitalMixer(nco)
        self.cic_i = CicDecimator(cfg.cic_stages, cfg.cic_decimation)
        self.cic_q = CicDecimator(cfg.cic_stages, cfg.cic_decimation)
        self.cfir = FirDecimator(
            design_cic_compensator(
                cfg.cfir_taps, cfg.cic_stages, cfg.cic_decimation
            ),
            decimation=cfg.cfir_decimation,
        )
        self.pfir = FirDecimator(
            design_lowpass(cfg.pfir_taps, cutoff=0.4),
            decimation=cfg.pfir_decimation,
        )

    def reset(self) -> None:
        """Clear every stage."""
        self.mixer.reset()
        self.cic_i.reset()
        self.cic_q.reset()
        self.cfir.reset()
        self.pfir.reset()

    def process(self, block: np.ndarray) -> np.ndarray:
        """Down-convert one block of real IF samples to baseband."""
        mixed = self.mixer.process(np.asarray(block, dtype=np.float64))
        scaled_i = np.round(mixed.real * self.CIC_INPUT_SCALE).astype(np.int64)
        scaled_q = np.round(mixed.imag * self.CIC_INPUT_SCALE).astype(np.int64)
        cic_out_i = self.cic_i.process(scaled_i)
        cic_out_q = self.cic_q.process(scaled_q)
        gain = self.cic_i.gain * self.CIC_INPUT_SCALE
        baseband = (cic_out_i.astype(np.float64)
                    + 1j * cic_out_q.astype(np.float64)) / gain
        shaped = self.cfir.process(baseband)
        return self.pfir.process(shaped)


#: Cycles per firing for each DDC actor on one tile, calibrated so the
#: paper's Table 4 mapping (8/8/2/16/16 tiles) reproduces its exact
#: frequencies (120/200/40/380/370 MHz) at 64 MS/s.  One SDF iteration
#: consumes 64 input samples (the total decimation), so e.g. the mixer
#: fires 64 times per iteration: 64 x 15 / 8 tiles = 120 cycles/iter =
#: 120 MHz at 1 M iterations/s.  The large FIR figures fold in the
#: schedule's SIMD padding and communication nops the paper describes
#: (Section 4.1, step 5).
DDC_ACTOR_CYCLES = {
    "mixer": 15.0,        # NCO lookup + complex multiply per sample
    "integrator": 25.0,   # 4 integrator stages, I and Q, per sample
    "comb": 20.0,         # 4 comb stages at the 1/16 decimated rate
    "cfir": 3040.0,       # 21 complex taps + padding, 16-way split
    "pfir": 5920.0,       # 63 complex taps + padding, 16-way split
}


def ddc_sdf_graph(config: DdcConfiguration | None = None) -> SdfGraph:
    """The DDC as an SDF graph with the paper's stage structure."""
    cfg = config or gsm_configuration()
    graph = SdfGraph("ddc")
    graph.add_actor("mixer", DDC_ACTOR_CYCLES["mixer"])
    graph.add_actor("integrator", DDC_ACTOR_CYCLES["integrator"])
    graph.add_actor("comb", DDC_ACTOR_CYCLES["comb"])
    graph.add_actor("cfir", DDC_ACTOR_CYCLES["cfir"])
    graph.add_actor("pfir", DDC_ACTOR_CYCLES["pfir"])
    graph.add_edge("mixer", "integrator", produce=1, consume=1)
    graph.add_edge("integrator", "comb",
                   produce=1, consume=cfg.cic_decimation)
    graph.add_edge("comb", "cfir", produce=1, consume=cfg.cfir_decimation)
    graph.add_edge("cfir", "pfir", produce=1, consume=cfg.pfir_decimation)
    return graph
