"""Programmable FIR stages: the 21-tap CFIR and 63-tap PFIR.

The CFIR compensates the CIC's sinc^N passband droop (its response
approximates the inverse of the CIC's within the band of interest)
and decimates by two; the PFIR provides the final channel shaping and
decimates by two again - the GC4014 arrangement the paper's DDC
follows.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal


def design_lowpass(taps: int, cutoff: float, window: str = "hamming") -> np.ndarray:
    """Windowed-sinc linear-phase lowpass (cutoff in normalized 0..1)."""
    if taps < 3:
        raise ValueError("need at least 3 taps")
    if not 0.0 < cutoff < 1.0:
        raise ValueError("cutoff must lie in (0, 1)")
    return sp_signal.firwin(taps, cutoff, window=window)


def cic_droop(frequencies: np.ndarray, stages: int, decimation: int,
              diff_delay: int = 1) -> np.ndarray:
    """|H_cic| at normalized input-rate frequencies (0..1 = Nyquist)."""
    rm = decimation * diff_delay
    # The classic sinc ratio sin(RM*w/2) / (RM*sin(w/2)), evaluated at
    # w = pi*f/R: frequencies are normalized to the CFIR's (decimated)
    # Nyquist, while the CIC filters at the R-times-higher input rate.
    w = np.pi * np.asarray(frequencies, dtype=np.float64) / decimation
    numerator = np.sin(rm * w / 2.0)
    denominator = rm * np.sin(w / 2.0)
    ratio = np.where(np.abs(denominator) < 1e-12, 1.0,
                     numerator / np.where(denominator == 0, 1, denominator))
    return np.abs(ratio) ** stages


def design_cic_compensator(
    taps: int = 21,
    stages: int = 4,
    decimation: int = 16,
    cutoff: float = 0.5,
    max_boost: float = 10.0,
) -> np.ndarray:
    """Inverse-sinc^N compensator via frequency sampling (firwin2).

    The desired response is 1/|H_cic| inside the passband (boost
    capped at ``max_boost``) and zero beyond ``cutoff`` (normalized to
    the CFIR's input Nyquist).
    """
    if taps % 2 == 0:
        raise ValueError("compensator tap count must be odd")
    grid = np.linspace(0.0, 1.0, 128)
    droop = cic_droop(grid, stages, decimation)
    desired = np.where(
        grid <= cutoff,
        np.minimum(1.0 / np.maximum(droop, 1e-9), max_boost),
        0.0,
    )
    desired[0] = 1.0
    return sp_signal.firwin2(taps, grid, desired)


class FirDecimator:
    """Streaming FIR filter with integer decimation."""

    def __init__(self, coefficients: np.ndarray, decimation: int = 1) -> None:
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.ndim != 1 or len(coefficients) == 0:
            raise ValueError("coefficients must be a non-empty 1-D array")
        if decimation < 1:
            raise ValueError("decimation must be >= 1")
        self.coefficients = coefficients
        self.decimation = decimation
        self._state = np.zeros(len(coefficients) - 1, dtype=np.complex128)
        self._phase = 0
        self.samples_in = 0
        self.samples_out = 0

    @property
    def taps(self) -> int:
        """Filter length."""
        return len(self.coefficients)

    def reset(self) -> None:
        """Clear delay line and decimation phase."""
        self._state = np.zeros(self.taps - 1, dtype=np.complex128)
        self._phase = 0
        self.samples_in = 0
        self.samples_out = 0

    def process(self, block: np.ndarray) -> np.ndarray:
        """Filter one block, returning the decimated output samples."""
        block = np.asarray(block, dtype=np.complex128)
        self.samples_in += len(block)
        filtered, self._state = sp_signal.lfilter(
            self.coefficients, [1.0], block, zi=self._state
        )
        if self.decimation == 1:
            self.samples_out += len(filtered)
            return filtered
        offset = (-self._phase) % self.decimation
        kept = filtered[offset::self.decimation]
        self._phase = (self._phase + len(block)) % self.decimation
        self.samples_out += len(kept)
        return kept

    def frequency_response(self, points: int = 512) -> tuple:
        """(normalized frequencies, complex response) for inspection."""
        frequencies, response = sp_signal.freqz(
            self.coefficients, worN=points
        )
        return frequencies / np.pi, response
