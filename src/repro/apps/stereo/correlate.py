"""Patch extraction and normalized cross-correlation for matching."""

from __future__ import annotations

import numpy as np


def extract_patch(
    image: np.ndarray, row: int, col: int, radius: int = 4
) -> np.ndarray:
    """Square patch of side 2*radius+1 centred on (row, col).

    Raises if the patch would leave the image - feature extraction
    excludes a border wide enough to prevent this.
    """
    image = np.asarray(image, dtype=np.float64)
    if not (radius <= row < image.shape[0] - radius
            and radius <= col < image.shape[1] - radius):
        raise ValueError(
            f"patch at ({row}, {col}) radius {radius} leaves the image"
        )
    return image[row - radius:row + radius + 1,
                 col - radius:col + radius + 1]


def normalized_correlation(patch_a: np.ndarray, patch_b: np.ndarray) -> float:
    """Zero-mean normalized cross-correlation in [-1, 1].

    Returns 0 for textureless (zero-variance) patches.
    """
    a = np.asarray(patch_a, dtype=np.float64).ravel()
    b = np.asarray(patch_b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError("patches must have identical shapes")
    a = a - a.mean()
    b = b - b.mean()
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm < 1e-12:
        return 0.0
    return float(np.dot(a, b) / norm)
