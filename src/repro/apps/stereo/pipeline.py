"""The two-stage stereo pipeline and a synthetic scene generator.

Point-feature extraction (16 tiles @ 310 MHz in Table 4) feeds
SVD-based correspondence (1 tile @ 500 MHz); disparities follow from
matched column offsets.  Frames are 256x256 monochrome at 10 f/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.apps.stereo.features import extract_features
from repro.apps.stereo.svd import pilu_correspondence
from repro.sdf.graph import SdfGraph

FRAME_SHAPE = (256, 256)
FRAME_RATE_FPS = 10.0


@dataclass(frozen=True)
class StereoMatch:
    """One correspondence with its disparity (left col - right col)."""

    left_row: int
    left_col: int
    right_row: int
    right_col: int

    @property
    def disparity(self) -> int:
        """Horizontal disparity in pixels."""
        return self.left_col - self.right_col


class StereoVisionPipeline:
    """Feature extraction + SVD correspondence over stereo pairs."""

    def __init__(
        self,
        max_features: int = 64,
        patch_radius: int = 4,
        sigma: float = 30.0,
    ) -> None:
        self.max_features = max_features
        self.patch_radius = patch_radius
        self.sigma = sigma
        self.frames_processed = 0

    def process(self, left: np.ndarray, right: np.ndarray) -> list:
        """Match features across one rectified stereo pair."""
        left = np.asarray(left, dtype=np.float64)
        right = np.asarray(right, dtype=np.float64)
        if left.shape != right.shape:
            raise ValueError("stereo frames must share a shape")
        border = self.patch_radius + 1
        features_left = extract_features(
            left, max_features=self.max_features, border=border
        )
        features_right = extract_features(
            right, max_features=self.max_features, border=border
        )
        pairs = pilu_correspondence(
            left, features_left, right, features_right,
            sigma=self.sigma, patch_radius=self.patch_radius,
        )
        self.frames_processed += 1
        return [
            StereoMatch(
                left_row=features_left[i].row,
                left_col=features_left[i].col,
                right_row=features_right[j].row,
                right_col=features_right[j].col,
            )
            for i, j in pairs
        ]


def synthetic_stereo_pair(
    disparity: int = 6,
    shape: tuple = FRAME_SHAPE,
    n_blobs: int = 40,
    noise: float = 0.01,
    seed: int = 0,
) -> tuple:
    """A rectified stereo pair of smoothed random blobs.

    The right image is the left shifted ``disparity`` pixels toward
    lower column indices (objects at one depth plane), so recovered
    disparities should cluster at ``disparity``.
    """
    rng = np.random.default_rng(seed)
    height, width = shape
    canvas = np.zeros((height, width + disparity))
    rows = rng.integers(10, height - 10, size=n_blobs)
    cols = rng.integers(10, width + disparity - 10, size=n_blobs)
    magnitude = rng.uniform(0.5, 1.0, size=n_blobs)
    canvas[rows, cols] = magnitude
    canvas = ndimage.gaussian_filter(canvas, sigma=2.0)
    canvas /= max(canvas.max(), 1e-12)
    left = canvas[:, :width].copy()
    right = canvas[:, disparity:disparity + width].copy()
    left += noise * rng.standard_normal(left.shape)
    right += noise * rng.standard_normal(right.shape)
    return left, right


#: Calibrated per-firing costs (one tile): one firing = one frame.
#: PFE on 16 tiles at 10 f/s: 496e6 cycles/frame/16 tiles * 10 f/s
#: = 310 MHz; SVD on 1 tile: 50e6 cycles/frame * 10 f/s = 500 MHz.
STEREO_ACTOR_CYCLES = {
    "pfe": 496.0e6,
    "svd": 50.0e6,
}


def stereo_sdf_graph() -> SdfGraph:
    """The two-actor stereo SDF graph (per-frame iteration)."""
    graph = SdfGraph("stereo_vision")
    graph.add_actor("pfe", STEREO_ACTOR_CYCLES["pfe"])
    graph.add_actor("svd", STEREO_ACTOR_CYCLES["svd"])
    graph.add_edge("pfe", "svd", produce=1, consume=1)
    return graph
