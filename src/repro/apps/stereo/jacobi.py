"""One-sided Jacobi SVD, from scratch.

The paper runs the stereo correspondence SVD on a single 500 MHz tile
(Table 4); a library SVD is not available there, and one-sided Jacobi
is the classic embedded-friendly algorithm: repeatedly rotate pairs of
columns until all are mutually orthogonal, then read off U, the
singular values (column norms), and V (the accumulated rotations).

:func:`amplify_jacobi` mirrors :func:`repro.apps.stereo.svd.amplify`
(P = U V^T); since P equals the unique orthogonal polar factor of G,
both implementations agree to numerical precision regardless of SVD
sign/order conventions - a property the tests exploit.
"""

from __future__ import annotations

import numpy as np


def jacobi_svd(
    matrix: np.ndarray,
    max_sweeps: int = 60,
    tolerance: float = 1e-12,
) -> tuple:
    """SVD by one-sided Jacobi rotations.

    Returns ``(u, singular_values, v_transpose)`` with singular values
    sorted descending.  Requires rows >= columns (tall or square);
    transpose wide inputs on the caller side.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("matrix must be 2-D")
    rows, cols = a.shape
    if rows < cols:
        raise ValueError(
            "jacobi_svd needs rows >= columns; pass the transpose"
        )
    work = a.copy()
    v = np.eye(cols)

    for _ in range(max_sweeps):
        rotated = False
        for p in range(cols - 1):
            for q in range(p + 1, cols):
                alpha = float(work[:, p] @ work[:, p])
                beta = float(work[:, q] @ work[:, q])
                gamma = float(work[:, p] @ work[:, q])
                if abs(gamma) <= tolerance * np.sqrt(alpha * beta) \
                        or alpha * beta == 0.0:
                    continue
                rotated = True
                zeta = (beta - alpha) / (2.0 * gamma)
                t = np.sign(zeta) / (
                    abs(zeta) + np.sqrt(1.0 + zeta * zeta)
                )
                c = 1.0 / np.sqrt(1.0 + t * t)
                s = c * t
                col_p = work[:, p].copy()
                work[:, p] = c * col_p - s * work[:, q]
                work[:, q] = s * col_p + c * work[:, q]
                v_p = v[:, p].copy()
                v[:, p] = c * v_p - s * v[:, q]
                v[:, q] = s * v_p + c * v[:, q]
        if not rotated:
            break

    norms = np.linalg.norm(work, axis=0)
    order = np.argsort(norms)[::-1]
    singular_values = norms[order]
    u = np.zeros_like(work)
    for out_index, col_index in enumerate(order):
        norm = norms[col_index]
        if norm > tolerance:
            u[:, out_index] = work[:, col_index] / norm
        else:
            u[:, out_index] = 0.0
    v_sorted = v[:, order]
    return u, singular_values, v_sorted.T


def amplify_jacobi(g: np.ndarray) -> np.ndarray:
    """P = U V^T via the Jacobi SVD (cf. :func:`svd.amplify`)."""
    g = np.asarray(g, dtype=np.float64)
    if g.size == 0:
        return g.copy()
    transpose = g.shape[0] < g.shape[1]
    work = g.T if transpose else g
    u, _, vt = jacobi_svd(work)
    p = u @ vt
    return p.T if transpose else p
