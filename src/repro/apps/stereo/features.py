"""Tomasi-Kanade point-feature extraction [10].

Good features to track are pixels whose local structure tensor

    Z = [[sum gx^2, sum gx*gy],
         [sum gx*gy, sum gy^2]]     (summed over a window)

has a large minimum eigenvalue: both eigenvalues large means texture
in two directions (a trackable corner).  The pipeline is: image
gradients, windowed tensor sums, min-eigenvalue response, threshold,
non-maximum suppression, and a best-N selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class FeaturePoint:
    """One detected feature: integer pixel position and its response."""

    row: int
    col: int
    response: float


def image_gradients(image: np.ndarray) -> tuple:
    """Central-difference gradients (gy, gx) of a float image."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError("image must be 2-D")
    gy, gx = np.gradient(image)
    return gy, gx


def min_eigenvalue_response(
    image: np.ndarray, window: int = 7
) -> np.ndarray:
    """Per-pixel minimum eigenvalue of the windowed structure tensor.

    For a symmetric 2x2 matrix [[a, b], [b, c]] the minimum eigenvalue
    is ``(a + c - sqrt((a - c)^2 + 4 b^2)) / 2``.
    """
    if window < 3 or window % 2 == 0:
        raise ValueError("window must be an odd integer >= 3")
    gy, gx = image_gradients(image)
    kernel = np.ones((window, window), dtype=np.float64)
    gxx = ndimage.convolve(gx * gx, kernel, mode="constant")
    gyy = ndimage.convolve(gy * gy, kernel, mode="constant")
    gxy = ndimage.convolve(gx * gy, kernel, mode="constant")
    trace = gxx + gyy
    discriminant = np.sqrt((gxx - gyy) ** 2 + 4.0 * gxy ** 2)
    return 0.5 * (trace - discriminant)


def non_maximum_suppression(
    response: np.ndarray, radius: int = 5
) -> np.ndarray:
    """Boolean mask of strict local maxima within ``radius``."""
    if radius < 1:
        raise ValueError("radius must be >= 1")
    size = 2 * radius + 1
    local_max = ndimage.maximum_filter(response, size=size, mode="constant")
    return (response == local_max) & (response > 0)


def extract_features(
    image: np.ndarray,
    max_features: int = 100,
    window: int = 7,
    suppression_radius: int = 5,
    quality: float = 0.01,
    border: int = 8,
) -> list:
    """Detect up to ``max_features`` Tomasi-Kanade corners.

    ``quality`` rejects responses below that fraction of the frame
    maximum; ``border`` excludes a margin where correlation patches
    would fall off the image.
    """
    response = min_eigenvalue_response(image, window=window)
    if border > 0:
        response[:border, :] = 0
        response[-border:, :] = 0
        response[:, :border] = 0
        response[:, -border:] = 0
    peak = response.max()
    if peak <= 0:
        return []
    mask = non_maximum_suppression(response, radius=suppression_radius)
    mask &= response >= quality * peak
    rows, cols = np.nonzero(mask)
    order = np.argsort(response[rows, cols])[::-1][:max_features]
    return [
        FeaturePoint(int(rows[i]), int(cols[i]), float(response[rows[i],
                     cols[i]]))
        for i in order
    ]
