"""SVD-based point correspondence (Pilu [30]).

Pilu's direct method builds a correspondence-strength matrix

    G[i, j] = exp(-(c_ij - 1)^2 / (2 gamma^2)) * exp(-d_ij^2 / (2 sigma^2))

combining patch correlation c_ij and spatial proximity d_ij, computes
its SVD G = U D V^T, replaces D with an identity-like matrix to get
P = U E V^T, and declares (i, j) a match when P[i, j] is the maximum
of both its row and its column - the "amplified" orthonormal pairing
of Scott & Longuet-Higgins that Pilu adapts to intensity images.
This is the single-tile 500 MHz component of the paper's Table 4.
"""

from __future__ import annotations

import numpy as np

from repro.apps.stereo.correlate import extract_patch, normalized_correlation


def pairing_matrix(
    image_a: np.ndarray,
    features_a: list,
    image_b: np.ndarray,
    features_b: list,
    sigma: float = 30.0,
    gamma: float = 0.4,
    patch_radius: int = 4,
) -> np.ndarray:
    """Pilu's G matrix over two feature sets."""
    if not features_a or not features_b:
        return np.zeros((len(features_a), len(features_b)))
    g = np.zeros((len(features_a), len(features_b)))
    patches_a = [
        extract_patch(image_a, f.row, f.col, patch_radius)
        for f in features_a
    ]
    patches_b = [
        extract_patch(image_b, f.row, f.col, patch_radius)
        for f in features_b
    ]
    for i, fa in enumerate(features_a):
        for j, fb in enumerate(features_b):
            distance2 = (fa.row - fb.row) ** 2 + (fa.col - fb.col) ** 2
            correlation = normalized_correlation(patches_a[i], patches_b[j])
            proximity = np.exp(-distance2 / (2.0 * sigma * sigma))
            similarity = np.exp(
                -((correlation - 1.0) ** 2) / (2.0 * gamma * gamma)
            )
            g[i, j] = proximity * similarity
    return g


def amplify(g: np.ndarray) -> np.ndarray:
    """SVD amplification: G = U D V^T  ->  P = U E V^T with E = I."""
    if g.size == 0:
        return g.copy()
    u, _, vt = np.linalg.svd(g, full_matrices=False)
    return u @ vt


def pilu_correspondence(
    image_a: np.ndarray,
    features_a: list,
    image_b: np.ndarray,
    features_b: list,
    sigma: float = 30.0,
    gamma: float = 0.4,
    patch_radius: int = 4,
    min_strength: float = 0.0,
) -> list:
    """Matched index pairs [(i, j), ...] by mutual row/column maxima."""
    g = pairing_matrix(
        image_a, features_a, image_b, features_b,
        sigma=sigma, gamma=gamma, patch_radius=patch_radius,
    )
    if g.size == 0:
        return []
    p = amplify(g)
    matches = []
    row_best = p.argmax(axis=1)
    col_best = p.argmax(axis=0)
    for i, j in enumerate(row_best):
        if col_best[j] == i and p[i, j] > min_strength:
            matches.append((i, int(j)))
    return matches
