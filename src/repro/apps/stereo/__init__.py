"""Stereo Vision (paper Section 3).

The Mars-Rover-style pipeline [26]: Tomasi-Kanade point-feature
extraction [10] followed by SVD-based point correspondence [30]
(Pilu's method), on 256x256 monochrome frames at 10 f/s.
"""

from repro.apps.stereo.features import (
    FeaturePoint,
    extract_features,
    min_eigenvalue_response,
)
from repro.apps.stereo.correlate import extract_patch, normalized_correlation
from repro.apps.stereo.svd import pilu_correspondence
from repro.apps.stereo.pipeline import (
    StereoMatch,
    StereoVisionPipeline,
    synthetic_stereo_pair,
)

__all__ = [
    "FeaturePoint",
    "extract_features",
    "min_eigenvalue_response",
    "extract_patch",
    "normalized_correlation",
    "pilu_correspondence",
    "StereoMatch",
    "StereoVisionPipeline",
    "synthetic_stereo_pair",
]
