"""Viterbi decoder for the K=7 code: ACS plus traceback.

The decoder is split exactly the way the paper maps it onto tiles:
the Add-Compare-Select recursion over the 64-state trellis (16 tiles
@ 540 MHz - the hottest component in Table 4 and the subject of the
Figure 8 bus-width study) and the traceback stage (1 tile @ 330 MHz).

The implementation vectorizes the ACS across states with numpy and
accepts soft inputs in [0, 1] (0.5 = erasure from depuncturing).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.apps.wlan.convcode import CONSTRAINT_LENGTH, G0, G1, _parity


class ViterbiDecoder:
    """Maximum-likelihood sequence decoder for the rate-1/2 code."""

    def __init__(self, g0: int = G0, g1: int = G1,
                 constraint: int = CONSTRAINT_LENGTH) -> None:
        if constraint < 2 or constraint > 12:
            raise ConfigurationError("constraint length out of range")
        self.constraint = constraint
        self.n_states = 1 << (constraint - 1)
        # Precompute, for each (state, input bit): next state and the
        # two expected output bits.
        self._next_state = np.zeros((self.n_states, 2), dtype=np.intp)
        self._outputs = np.zeros((self.n_states, 2, 2), dtype=np.float64)
        mask = (1 << constraint) - 1
        for state in range(self.n_states):
            for bit in (0, 1):
                register = ((state << 1) | bit) & mask
                self._next_state[state, bit] = register & (self.n_states - 1)
                self._outputs[state, bit, 0] = _parity(register & g0)
                self._outputs[state, bit, 1] = _parity(register & g1)
        # Butterfly structure of the shift-register trellis: target
        # t = (2s + b) mod n_states, so t's parity *is* the input bit
        # and t's two predecessors are t>>1 and t>>1 + n_states/2.
        targets = np.arange(self.n_states)
        self._target_bit = targets & 1
        self._pred0 = targets >> 1
        self._pred1 = (targets >> 1) + self.n_states // 2

    def acs(self, soft_pairs: np.ndarray) -> tuple:
        """Run the Add-Compare-Select recursion.

        ``soft_pairs`` has shape (steps, 2) with values in [0, 1].
        Returns (survivor decisions of shape (steps, n_states) holding
        the predecessor-selecting input bit, final path metrics).
        """
        soft_pairs = np.asarray(soft_pairs, dtype=np.float64)
        if soft_pairs.ndim != 2 or soft_pairs.shape[1] != 2:
            raise ValueError("soft_pairs must have shape (steps, 2)")
        steps = len(soft_pairs)
        infinity = 1.0e18
        metrics = np.full(self.n_states, infinity)
        metrics[0] = 0.0  # the encoder starts in state 0
        survivors = np.zeros((steps, self.n_states), dtype=np.uint8)
        prev_state = np.zeros((steps, self.n_states), dtype=np.intp)

        bit_of_target = self._target_bit
        pred0, pred1 = self._pred0, self._pred1
        for step in range(steps):
            observed = soft_pairs[step]
            # branch[s, b]: distance of (s, b)'s expected outputs from
            # the observation.
            branch = (
                np.abs(self._outputs[:, :, 0] - observed[0])
                + np.abs(self._outputs[:, :, 1] - observed[1])
            )
            candidate0 = metrics[pred0] + branch[pred0, bit_of_target]
            candidate1 = metrics[pred1] + branch[pred1, bit_of_target]
            take1 = candidate1 < candidate0
            metrics = np.where(take1, candidate1, candidate0)
            survivors[step] = bit_of_target
            prev_state[step] = np.where(take1, pred1, pred0)
        self._prev_state = prev_state
        return survivors, metrics

    def traceback(
        self,
        survivors: np.ndarray,
        metrics: np.ndarray,
        terminated: bool = True,
    ) -> np.ndarray:
        """Walk survivors backwards to recover the information bits."""
        steps = len(survivors)
        state = 0 if terminated else int(np.argmin(metrics))
        bits = np.zeros(steps, dtype=np.uint8)
        for step in range(steps - 1, -1, -1):
            bits[step] = survivors[step, state]
            state = self._prev_state[step, state]
        return bits

    def decode(
        self, soft_bits: np.ndarray, terminated: bool = True
    ) -> np.ndarray:
        """Decode a soft (or hard) rate-1/2 stream to information bits.

        With ``terminated`` the encoder's tail zeros are stripped from
        the result.
        """
        soft_bits = np.asarray(soft_bits, dtype=np.float64)
        if len(soft_bits) % 2:
            raise ValueError("soft input length must be even")
        pairs = soft_bits.reshape(-1, 2)
        survivors, metrics = self.acs(pairs)
        bits = self.traceback(survivors, metrics, terminated=terminated)
        if terminated:
            tail = self.constraint - 1
            if len(bits) < tail:
                raise ValueError("stream shorter than the code tail")
            bits = bits[:-tail]
        return bits

    def decode_windowed(
        self,
        soft_bits: np.ndarray,
        traceback_depth: int = 64,
    ) -> np.ndarray:
        """Streaming decode with a finite traceback window.

        Real hardware - including the paper's dedicated Viterbi
        Traceback component (1 tile @ 330 MHz) - cannot buffer a whole
        packet's survivors; it traces back a fixed ``traceback_depth``
        from the currently best state and commits the oldest bit.
        Depths of ~5x the constraint length are effectively lossless;
        shorter windows trade accuracy for survivor memory.
        """
        if traceback_depth < 1:
            raise ValueError("traceback depth must be positive")
        soft_bits = np.asarray(soft_bits, dtype=np.float64)
        if len(soft_bits) % 2:
            raise ValueError("soft input length must be even")
        pairs = soft_bits.reshape(-1, 2)
        steps = len(pairs)

        # Run the ACS once (survivors are reused window by window);
        # running metrics at every step are recomputed incrementally.
        survivors, _ = self.acs(pairs)
        prev_state = self._prev_state

        metrics = np.full(self.n_states, 1.0e18)
        metrics[0] = 0.0
        best_state_at = np.zeros(steps, dtype=np.intp)
        bit_of_target = self._target_bit
        pred0, pred1 = self._pred0, self._pred1
        for step in range(steps):
            observed = pairs[step]
            branch = (
                np.abs(self._outputs[:, :, 0] - observed[0])
                + np.abs(self._outputs[:, :, 1] - observed[1])
            )
            candidate0 = metrics[pred0] + branch[pred0, bit_of_target]
            candidate1 = metrics[pred1] + branch[pred1, bit_of_target]
            metrics = np.minimum(candidate0, candidate1)
            best_state_at[step] = int(np.argmin(metrics))

        bits = np.zeros(steps, dtype=np.uint8)
        for commit in range(steps):
            window_end = min(commit + traceback_depth, steps - 1)
            state = best_state_at[window_end]
            for step in range(window_end, commit, -1):
                state = prev_state[step, state]
            bits[commit] = survivors[commit, state]
        return bits
