"""802.11a block interleaver (clause 17.3.5.6).

Two permutations over each OFDM symbol's N_CBPS coded bits: the first
spreads adjacent coded bits onto non-adjacent subcarriers,

    i = (N_CBPS / 16) * (k mod 16) + floor(k / 16)

and the second rotates bits within a subcarrier's constellation
position so long runs of low-reliability LSBs are avoided,

    j = s * floor(i / s) + (i + N_CBPS - floor(16 i / N_CBPS)) mod s

with s = max(N_BPSC / 2, 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _permutations(n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Composite k -> j mapping for one symbol."""
    if n_cbps % 16:
        raise ConfigurationError("N_CBPS must be divisible by 16")
    if n_bpsc < 1:
        raise ConfigurationError("N_BPSC must be positive")
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    i = (n_cbps // 16) * (k % 16) + k // 16
    j = s * (i // s) + (i + n_cbps - (16 * i) // n_cbps) % s
    return j


def interleave(bits: np.ndarray, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Interleave one or more symbols' worth of coded bits."""
    bits = np.asarray(bits)
    if len(bits) % n_cbps:
        raise ConfigurationError(
            f"bit count {len(bits)} is not a whole number of "
            f"{n_cbps}-bit symbols"
        )
    mapping = _permutations(n_cbps, n_bpsc)
    out = np.empty_like(bits)
    for start in range(0, len(bits), n_cbps):
        symbol = bits[start:start + n_cbps]
        interleaved = np.empty_like(symbol)
        interleaved[mapping] = symbol
        out[start:start + n_cbps] = interleaved
    return out


def deinterleave(bits: np.ndarray, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Invert :func:`interleave`."""
    bits = np.asarray(bits)
    if len(bits) % n_cbps:
        raise ConfigurationError(
            f"bit count {len(bits)} is not a whole number of "
            f"{n_cbps}-bit symbols"
        )
    mapping = _permutations(n_cbps, n_bpsc)
    out = np.empty_like(bits)
    for start in range(0, len(bits), n_cbps):
        symbol = bits[start:start + n_cbps]
        out[start:start + n_cbps] = symbol[mapping]
    return out
