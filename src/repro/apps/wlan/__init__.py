"""802.11a OFDM end-to-end application (paper Section 3).

The IEEE 802.11a PHY: OFDM over 64 subcarriers (48 data + 4 pilots),
rates 6-54 Mbps from BPSK/QPSK/16-QAM/64-QAM with a K=7 rate-1/2
convolutional code (punctured to 2/3 and 3/4) and a two-permutation
interleaver.  The paper maps the receiver's four major components -
FFT, demodulation, de-interleaving, and the Viterbi decoder (ACS +
traceback) - onto 20 tiles (Table 4).

We implement both transmitter and receiver so the receiver is tested
end-to-end over an AWGN channel at every rate.
"""

from repro.apps.wlan.fft import fft, ifft
from repro.apps.wlan.scrambler import Scrambler, pilot_polarity
from repro.apps.wlan.convcode import ConvolutionalEncoder, puncture, depuncture
from repro.apps.wlan.viterbi import ViterbiDecoder
from repro.apps.wlan.interleaver import interleave, deinterleave
from repro.apps.wlan.modulation import Demodulator, Modulator, SoftDemodulator
from repro.apps.wlan.frame import RateParameters, RATE_TABLE, rate_parameters
from repro.apps.wlan.transmitter import Transmitter
from repro.apps.wlan.receiver import Receiver
from repro.apps.wlan.channel import (
    awgn_channel,
    flat_fading_channel,
    multipath_channel,
)
from repro.apps.wlan.secure import SecureLink, SecureReceiveResult

__all__ = [
    "fft",
    "ifft",
    "Scrambler",
    "pilot_polarity",
    "ConvolutionalEncoder",
    "puncture",
    "depuncture",
    "ViterbiDecoder",
    "interleave",
    "deinterleave",
    "Modulator",
    "Demodulator",
    "SoftDemodulator",
    "RateParameters",
    "RATE_TABLE",
    "rate_parameters",
    "Transmitter",
    "Receiver",
    "awgn_channel",
    "flat_fading_channel",
    "multipath_channel",
    "SecureLink",
    "SecureReceiveResult",
]
