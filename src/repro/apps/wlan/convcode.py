"""K=7 convolutional code and 802.11a puncturing (clause 17.3.5.5).

The industry-standard rate-1/2 code with generators g0 = 133 and
g1 = 171 (octal).  Higher rates puncture the mother code: rate 2/3
drops every second g1 output, rate 3/4 drops one bit of each stream
per three information bits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

G0 = 0o133
G1 = 0o171
CONSTRAINT_LENGTH = 7

#: Puncturing masks over the interleaved (A0 B0 A1 B1 ...) stream,
#: per Figure 144/145 of the standard: 1 = transmit, 0 = drop.
PUNCTURE_PATTERNS = {
    "1/2": (1, 1),
    "2/3": (1, 1, 1, 0),
    "3/4": (1, 1, 1, 0, 0, 1),
}


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


class ConvolutionalEncoder:
    """Terminated rate-1/2 encoder (six tail zeros flush the state)."""

    def __init__(self, g0: int = G0, g1: int = G1,
                 constraint: int = CONSTRAINT_LENGTH) -> None:
        if constraint < 2:
            raise ConfigurationError("constraint length must be >= 2")
        self.g0 = g0
        self.g1 = g1
        self.constraint = constraint

    @property
    def tail_bits(self) -> int:
        """Zero bits appended to return the trellis to state 0."""
        return self.constraint - 1

    def encode(self, bits: np.ndarray, terminate: bool = True) -> np.ndarray:
        """Encode to the interleaved A/B output stream (2 bits per input)."""
        bits = np.asarray(bits, dtype=np.uint8)
        if terminate:
            bits = np.concatenate(
                [bits, np.zeros(self.tail_bits, dtype=np.uint8)]
            )
        state = 0
        out = np.empty(2 * len(bits), dtype=np.uint8)
        for index, bit in enumerate(bits):
            state = ((state << 1) | int(bit)) & ((1 << self.constraint) - 1)
            out[2 * index] = _parity(state & self.g0)
            out[2 * index + 1] = _parity(state & self.g1)
        return out


def puncture(coded: np.ndarray, rate: str) -> np.ndarray:
    """Drop mother-code bits per the rate's puncturing pattern."""
    if rate not in PUNCTURE_PATTERNS:
        raise ConfigurationError(f"unknown coding rate {rate!r}")
    pattern = np.array(PUNCTURE_PATTERNS[rate], dtype=bool)
    coded = np.asarray(coded, dtype=np.uint8)
    mask = np.resize(pattern, len(coded))
    return coded[mask]


def depuncture(received: np.ndarray, rate: str,
               erasure: float = 0.5) -> np.ndarray:
    """Re-insert erasures where the transmitter punctured.

    ``received`` may be hard bits or soft values in [0, 1]; erasures
    get the neutral value 0.5 so the Viterbi metric ignores them.
    """
    if rate not in PUNCTURE_PATTERNS:
        raise ConfigurationError(f"unknown coding rate {rate!r}")
    pattern = np.array(PUNCTURE_PATTERNS[rate], dtype=bool)
    received = np.asarray(received, dtype=np.float64)
    kept_per_period = int(pattern.sum())
    periods, remainder_kept = divmod(len(received), kept_per_period)

    # Whole periods expand vectorized; a partial tail (possible only
    # for non-symbol-aligned streams) is walked slot by slot, then the
    # result is padded with erasures to whole code pairs.
    out = np.full(periods * len(pattern), erasure, dtype=np.float64)
    mask = np.resize(pattern, len(out))
    out[mask] = received[:periods * kept_per_period]
    tail: list = []
    taken = periods * kept_per_period
    slot = 0
    while taken < len(received):
        if pattern[slot % len(pattern)]:
            tail.append(received[taken])
            taken += 1
        else:
            tail.append(erasure)
        slot += 1
    full = np.concatenate([out, np.array(tail, dtype=np.float64)])
    if len(full) % 2:
        full = np.concatenate([full, [erasure]])
    return full
