"""Radix-2 FFT, written out the way the hardware computes it.

The 802.11a receiver's first major component is a 64-point FFT
(2 tiles @ 90 MHz in Table 4).  We implement the iterative
decimation-in-time radix-2 algorithm - bit-reversal permutation then
log2(n) butterfly stages - rather than calling a library, so the
butterfly structure the tiles execute is explicit and testable
against numpy's reference.
"""

from __future__ import annotations

import numpy as np


def bit_reverse_indices(n: int) -> np.ndarray:
    """Bit-reversal permutation of 0..n-1 (n a power of two)."""
    if n < 1 or n & (n - 1):
        raise ValueError("n must be a positive power of two")
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.intp)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def fft(samples: np.ndarray) -> np.ndarray:
    """Iterative radix-2 DIT FFT."""
    data = np.asarray(samples, dtype=np.complex128)
    if data.ndim != 1:
        raise ValueError("fft expects a 1-D array")
    n = len(data)
    if n == 0 or n & (n - 1):
        raise ValueError("length must be a power of two")
    output = data[bit_reverse_indices(n)].copy()
    size = 2
    while size <= n:
        half = size // 2
        twiddles = np.exp(-2j * np.pi * np.arange(half) / size)
        for start in range(0, n, size):
            top = output[start:start + half].copy()
            bottom = output[start + half:start + size] * twiddles
            output[start:start + half] = top + bottom
            output[start + half:start + size] = top - bottom
        size *= 2
    return output


def ifft(spectrum: np.ndarray) -> np.ndarray:
    """Inverse FFT via conjugation: ifft(x) = conj(fft(conj(x))) / n."""
    data = np.asarray(spectrum, dtype=np.complex128)
    return np.conj(fft(np.conj(data))) / len(data)


def butterfly_count(n: int) -> int:
    """Complex butterflies in an n-point radix-2 FFT: (n/2) log2 n.

    Used by the workload profiles to derive the FFT component's cycle
    cost per OFDM symbol.
    """
    if n < 2 or n & (n - 1):
        raise ValueError("n must be a power of two >= 2")
    return (n // 2) * (n.bit_length() - 1)
