"""802.11a transmitter: the reference signal source for RX testing.

DATA-field processing per clause 17.3.5: scramble, convolutionally
encode (terminated), puncture to the coding rate, interleave per
symbol, map to subcarriers, and assemble OFDM symbols.  (The PLCP
preamble and SIGNAL field are acquisition aids outside the paper's
four receiver components and are omitted; the receiver is given the
rate and symbol timing, as the paper's mapping also assumes.)
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.apps.wlan.convcode import ConvolutionalEncoder, puncture
from repro.apps.wlan.frame import (
    N_DATA_SUBCARRIERS,
    assemble_symbol,
    long_preamble,
    rate_parameters,
)
from repro.apps.wlan.interleaver import interleave
from repro.apps.wlan.modulation import Modulator
from repro.apps.wlan.scrambler import Scrambler


class Transmitter:
    """Bits in, 20 MS/s complex baseband out."""

    def __init__(self, rate_mbps: int = 54,
                 scrambler_seed: int = 0b1011101) -> None:
        self.parameters = rate_parameters(rate_mbps)
        self.scrambler_seed = scrambler_seed
        self._encoder = ConvolutionalEncoder()
        self._modulator = Modulator(self.parameters.n_bpsc)

    def pad_length(self, n_bits: int) -> int:
        """Padded DATA length: whole symbols including the code tail."""
        n_dbps = self.parameters.n_dbps
        with_tail = n_bits + self._encoder.tail_bits
        symbols = -(-with_tail // n_dbps)
        return symbols * n_dbps - self._encoder.tail_bits

    def transmit(self, bits: np.ndarray,
                 include_preamble: bool = False) -> np.ndarray:
        """Modulate a payload; returns the time-domain sample stream.

        ``include_preamble`` prepends the 160-sample long training
        preamble so the receiver can estimate a frequency-selective
        channel per subcarrier.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ConfigurationError("payload must be a 1-D bit array")
        padded = np.zeros(self.pad_length(len(bits)), dtype=np.uint8)
        padded[:len(bits)] = bits

        scrambler = Scrambler(self.scrambler_seed)
        scrambled = scrambler.process(padded)
        # The standard resets the six scrambled tail positions to zero
        # so the decoder's trellis terminates; our encoder appends
        # explicit zero tail bits instead (equivalent trellis).
        coded = self._encoder.encode(scrambled, terminate=True)
        punctured = puncture(coded, self.parameters.coding_rate)

        n_cbps = self.parameters.n_cbps
        if len(punctured) % n_cbps:
            raise ConfigurationError(
                "internal error: punctured stream not symbol-aligned"
            )
        interleaved = interleave(punctured, n_cbps, self.parameters.n_bpsc)
        points = self._modulator.map_bits(interleaved)
        symbols = []
        if include_preamble:
            symbols.append(long_preamble())
        per_symbol = N_DATA_SUBCARRIERS
        for index in range(0, len(points), per_symbol):
            symbols.append(
                assemble_symbol(points[index:index + per_symbol],
                                index // per_symbol)
            )
        return np.concatenate(symbols)
