"""802.11a OFDM framing: rate table and symbol assembly (clause 17.3).

64 subcarriers at 20 MHz: 48 carry data, 4 carry pilots (at -21, -7,
7, 21), the rest (DC and the band edges) are null.  Each symbol gets
a 16-sample cyclic prefix (80 samples per symbol, 4 us).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.apps.wlan.fft import fft, ifft
from repro.apps.wlan.scrambler import pilot_polarity

N_FFT = 64
N_DATA_SUBCARRIERS = 48
CYCLIC_PREFIX = 16
SYMBOL_SAMPLES = N_FFT + CYCLIC_PREFIX
PILOT_SUBCARRIERS = (-21, -7, 7, 21)
#: Base pilot values before the polarity sequence is applied.
PILOT_VALUES = (1.0, 1.0, 1.0, -1.0)

#: Occupied data subcarrier indices: -26..26 minus DC and pilots.
DATA_SUBCARRIERS = tuple(
    k for k in range(-26, 27)
    if k != 0 and k not in PILOT_SUBCARRIERS
)

#: Long training sequence L_{-26..26} (clause 17.3.3), DC excluded.
_LTS_VALUES = (
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1,
    -1, 1, -1, 1, 1, 1, 1,          # k = -26..-1
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1,
    -1, 1, -1, 1, -1, 1, 1, 1, 1,   # k = +1..+26
)
LONG_TRAINING_SEQUENCE = dict(zip(
    [k for k in range(-26, 27) if k != 0], _LTS_VALUES
))
LONG_PREAMBLE_SAMPLES = 160  # 32-sample GI2 + two 64-sample symbols


@dataclass(frozen=True)
class RateParameters:
    """One row of the standard's rate-dependent parameters table."""

    rate_mbps: int
    modulation: str
    coding_rate: str
    n_bpsc: int   # coded bits per subcarrier
    n_cbps: int   # coded bits per OFDM symbol
    n_dbps: int   # data bits per OFDM symbol


RATE_TABLE = {
    6: RateParameters(6, "BPSK", "1/2", 1, 48, 24),
    9: RateParameters(9, "BPSK", "3/4", 1, 48, 36),
    12: RateParameters(12, "QPSK", "1/2", 2, 96, 48),
    18: RateParameters(18, "QPSK", "3/4", 2, 96, 72),
    24: RateParameters(24, "16-QAM", "1/2", 4, 192, 96),
    36: RateParameters(36, "16-QAM", "3/4", 4, 192, 144),
    48: RateParameters(48, "64-QAM", "2/3", 6, 288, 192),
    54: RateParameters(54, "64-QAM", "3/4", 6, 288, 216),
}


def rate_parameters(rate_mbps: int) -> RateParameters:
    """Look up a standard data rate."""
    try:
        return RATE_TABLE[rate_mbps]
    except KeyError:
        raise ConfigurationError(
            f"unsupported 802.11a rate {rate_mbps} Mbps; valid: "
            f"{sorted(RATE_TABLE)}"
        ) from None


def _subcarrier_slot(k: int) -> int:
    """FFT bin of logical subcarrier k (negative wrap to the top)."""
    return k % N_FFT


def assemble_symbol(
    data_symbols: np.ndarray, symbol_index: int
) -> np.ndarray:
    """One time-domain OFDM symbol (with CP) from 48 data points."""
    data_symbols = np.asarray(data_symbols, dtype=np.complex128)
    if len(data_symbols) != N_DATA_SUBCARRIERS:
        raise ConfigurationError(
            f"expected {N_DATA_SUBCARRIERS} data symbols, "
            f"got {len(data_symbols)}"
        )
    spectrum = np.zeros(N_FFT, dtype=np.complex128)
    for value, k in zip(data_symbols, DATA_SUBCARRIERS):
        spectrum[_subcarrier_slot(k)] = value
    polarity = pilot_polarity(symbol_index + 1)[-1]
    for value, k in zip(PILOT_VALUES, PILOT_SUBCARRIERS):
        spectrum[_subcarrier_slot(k)] = value * polarity
    time_domain = ifft(spectrum) * np.sqrt(N_FFT)
    return np.concatenate(
        [time_domain[-CYCLIC_PREFIX:], time_domain]
    )


def long_preamble() -> np.ndarray:
    """The 160-sample long training preamble (two LTS + 32-sample GI)."""
    spectrum = np.zeros(N_FFT, dtype=np.complex128)
    for k, value in LONG_TRAINING_SEQUENCE.items():
        spectrum[_subcarrier_slot(k)] = value
    symbol = ifft(spectrum) * np.sqrt(N_FFT)
    return np.concatenate([symbol[-32:], symbol, symbol])


def estimate_channel(preamble_samples: np.ndarray) -> dict:
    """Per-subcarrier channel estimate from a received long preamble.

    Averages the two training symbols and divides by the known LTS,
    returning {subcarrier k: H(k)} over all occupied subcarriers.
    """
    preamble_samples = np.asarray(preamble_samples,
                                  dtype=np.complex128)
    if len(preamble_samples) != LONG_PREAMBLE_SAMPLES:
        raise ConfigurationError(
            f"long preamble must be {LONG_PREAMBLE_SAMPLES} samples"
        )
    first = fft(preamble_samples[32:96]) / np.sqrt(N_FFT)
    second = fft(preamble_samples[96:160]) / np.sqrt(N_FFT)
    averaged = (first + second) / 2.0
    return {
        k: averaged[_subcarrier_slot(k)] / value
        for k, value in LONG_TRAINING_SEQUENCE.items()
    }


def disassemble_symbol(
    samples: np.ndarray, symbol_index: int
) -> tuple:
    """(48 data points, 4 pilot points) from one received symbol."""
    samples = np.asarray(samples, dtype=np.complex128)
    if len(samples) != SYMBOL_SAMPLES:
        raise ConfigurationError(
            f"expected {SYMBOL_SAMPLES} samples, got {len(samples)}"
        )
    spectrum = fft(samples[CYCLIC_PREFIX:]) / np.sqrt(N_FFT)
    data = np.array(
        [spectrum[_subcarrier_slot(k)] for k in DATA_SUBCARRIERS]
    )
    polarity = pilot_polarity(symbol_index + 1)[-1]
    pilots = np.array(
        [spectrum[_subcarrier_slot(k)] * value * polarity
         for value, k in zip(PILOT_VALUES, PILOT_SUBCARRIERS)]
    )
    return data, pilots
