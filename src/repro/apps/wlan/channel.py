"""Channel models for end-to-end 802.11a testing."""

from __future__ import annotations

import numpy as np


def awgn_channel(
    samples: np.ndarray,
    snr_db: float,
    seed: int | None = None,
    signal_power: float | None = None,
) -> np.ndarray:
    """Add complex white Gaussian noise at the given SNR.

    ``signal_power`` defaults to the measured mean power of the input.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    rng = np.random.default_rng(seed)
    if signal_power is None:
        signal_power = float(np.mean(np.abs(samples) ** 2))
    noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    scale = np.sqrt(noise_power / 2.0)
    noise = scale * (
        rng.standard_normal(len(samples))
        + 1j * rng.standard_normal(len(samples))
    )
    return samples + noise


def multipath_channel(
    samples: np.ndarray,
    taps: np.ndarray,
    snr_db: float | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """A static frequency-selective channel (FIR taps) plus AWGN.

    Tap delays must stay within the 16-sample cyclic prefix for the
    OFDM receiver's per-subcarrier equalizer to hold.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    taps = np.asarray(taps, dtype=np.complex128)
    if taps.ndim != 1 or len(taps) == 0:
        raise ValueError("taps must be a non-empty 1-D array")
    if len(taps) > 16:
        raise ValueError("delay spread exceeds the cyclic prefix")
    faded = np.convolve(samples, taps)[:len(samples)]
    if snr_db is None:
        return faded
    return awgn_channel(faded, snr_db, seed=seed)


def flat_fading_channel(
    samples: np.ndarray,
    gain: complex = 1.0,
    snr_db: float | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """A single-tap complex gain, optionally followed by AWGN.

    Exercises the receiver's one-tap equalizer.
    """
    samples = np.asarray(samples, dtype=np.complex128) * gain
    if snr_db is None:
        return samples
    return awgn_channel(samples, snr_db, seed=seed)
