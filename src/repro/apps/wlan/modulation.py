"""802.11a subcarrier modulation (clause 17.3.5.7).

Gray-coded BPSK, QPSK, 16-QAM, and 64-QAM with the standard's
normalization factors (1, 1/sqrt(2), 1/sqrt(10), 1/sqrt(42)) so all
constellations carry unit average energy.  Demapping is hard-decision
per axis (the Gray code makes each axis independent).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Gray-coded PAM levels per axis, indexed by bits-per-axis.
_GRAY_LEVELS = {
    1: np.array([-1.0, 1.0]),
    2: np.array([-3.0, -1.0, 3.0, 1.0]),
    3: np.array([-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0]),
}

_NORMALIZATION = {1: 1.0, 2: np.sqrt(2.0), 4: np.sqrt(10.0),
                  6: np.sqrt(42.0)}


def _bits_to_index(bits: np.ndarray) -> np.ndarray:
    """MSB-first bit groups to integers."""
    value = np.zeros(bits.shape[0], dtype=np.intp)
    for column in range(bits.shape[1]):
        value = (value << 1) | bits[:, column].astype(np.intp)
    return value


class Modulator:
    """Bits to complex subcarrier symbols for one N_BPSC."""

    def __init__(self, bits_per_symbol: int) -> None:
        if bits_per_symbol not in _NORMALIZATION:
            raise ConfigurationError(
                f"unsupported N_BPSC {bits_per_symbol}; must be 1/2/4/6"
            )
        self.bits_per_symbol = bits_per_symbol
        self.normalization = _NORMALIZATION[bits_per_symbol]

    def map_bits(self, bits: np.ndarray) -> np.ndarray:
        """Map a bit stream to constellation points."""
        bits = np.asarray(bits, dtype=np.uint8)
        if len(bits) % self.bits_per_symbol:
            raise ConfigurationError(
                "bit count must divide evenly into symbols"
            )
        groups = bits.reshape(-1, self.bits_per_symbol)
        if self.bits_per_symbol == 1:
            i_levels = _GRAY_LEVELS[1][_bits_to_index(groups)]
            return (i_levels + 0j) / self.normalization
        half = self.bits_per_symbol // 2
        levels = _GRAY_LEVELS[half]
        i_levels = levels[_bits_to_index(groups[:, :half])]
        q_levels = levels[_bits_to_index(groups[:, half:])]
        return (i_levels + 1j * q_levels) / self.normalization


class Demodulator:
    """Hard-decision inverse of :class:`Modulator`."""

    def __init__(self, bits_per_symbol: int) -> None:
        self._modulator = Modulator(bits_per_symbol)
        self.bits_per_symbol = bits_per_symbol
        # Decision by nearest constellation point per axis.
        half = max(bits_per_symbol // 2, 1)
        levels = _GRAY_LEVELS[half]
        order = np.argsort(levels)
        self._sorted_levels = levels[order]
        self._sorted_codes = order  # code whose level sits at that slot
        self._half = half

    def _axis_bits(self, values: np.ndarray) -> np.ndarray:
        """Nearest-level decision on one axis, returning bit groups."""
        edges = (self._sorted_levels[:-1] + self._sorted_levels[1:]) / 2.0
        slots = np.searchsorted(edges, values)
        codes = self._sorted_codes[slots]
        bits = np.zeros((len(values), self._half), dtype=np.uint8)
        for column in range(self._half):
            bits[:, column] = (codes >> (self._half - 1 - column)) & 1
        return bits

    def demap(self, symbols: np.ndarray) -> np.ndarray:
        """Decide bits from (equalized) constellation points."""
        symbols = np.asarray(symbols, dtype=np.complex128)
        scaled = symbols * self._modulator.normalization
        i_bits = self._axis_bits(scaled.real)
        if self.bits_per_symbol == 1:
            return i_bits.reshape(-1)
        q_bits = self._axis_bits(scaled.imag)
        return np.concatenate([i_bits, q_bits], axis=1).reshape(-1)


class SoftDemodulator:
    """Max-log-MAP soft demapper feeding the Viterbi decoder.

    For each bit the per-axis log-likelihood ratio is the difference
    between the squared distances to the nearest constellation level
    carrying 0 and the nearest carrying 1; a logistic squashes the LLR
    into the [0, 1] range the decoder's branch metric expects (0.5 =
    erasure).  Soft inputs buy the classic ~2 dB over hard decisions.
    """

    def __init__(self, bits_per_symbol: int,
                 temperature: float = 2.0) -> None:
        if temperature <= 0:
            raise ConfigurationError("temperature must be positive")
        self._modulator = Modulator(bits_per_symbol)
        self.bits_per_symbol = bits_per_symbol
        self.temperature = temperature
        self._half = max(bits_per_symbol // 2, 1)
        self._levels = _GRAY_LEVELS[self._half]
        codes = np.arange(len(self._levels))
        # mask[b][v] - whether bit b (MSB first) of code v is set
        self._bit_set = np.array([
            (codes >> (self._half - 1 - bit)) & 1
            for bit in range(self._half)
        ], dtype=bool)

    def _axis_soft(self, values: np.ndarray) -> np.ndarray:
        """Per-axis soft bits, shape (n, bits_per_axis)."""
        distances = (values[:, None] - self._levels[None, :]) ** 2
        out = np.empty((len(values), self._half))
        for bit in range(self._half):
            ones = self._bit_set[bit]
            d_one = distances[:, ones].min(axis=1)
            d_zero = distances[:, ~ones].min(axis=1)
            llr = d_zero - d_one  # positive -> bit 1 likelier
            out[:, bit] = 1.0 / (1.0 + np.exp(-llr / self.temperature))
        return out

    def demap_soft(self, symbols: np.ndarray) -> np.ndarray:
        """Soft values in [0, 1], one per coded bit."""
        symbols = np.asarray(symbols, dtype=np.complex128)
        scaled = symbols * self._modulator.normalization
        i_soft = self._axis_soft(scaled.real)
        if self.bits_per_symbol == 1:
            return i_soft.reshape(-1)
        q_soft = self._axis_soft(scaled.imag)
        return np.concatenate([i_soft, q_soft], axis=1).reshape(-1)
