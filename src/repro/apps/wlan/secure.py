"""802.11a + AES composition (paper Section 5.1).

The paper composes "an AES-based message authentication code with the
802.11a receiver" to show voltage scaling across co-resident
applications (the 16-tile AES component of Table 4).  This module is
the functional side of that composition: frames carry a CBC-MAC tag,
and the receiver verifies it after Viterbi decoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.apps.aes.cbc_mac import cbc_mac
from repro.apps.wlan.receiver import Receiver
from repro.apps.wlan.transmitter import Transmitter

TAG_BITS = 128


def _bits_to_bytes(bits: np.ndarray) -> bytes:
    bits = np.asarray(bits, dtype=np.uint8)
    if len(bits) % 8:
        raise ConfigurationError("bit count must be a whole byte count")
    return np.packbits(bits).tobytes()


def _bytes_to_bits(data: bytes) -> np.ndarray:
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


@dataclass(frozen=True)
class SecureReceiveResult:
    """Decoded payload plus the authentication verdict."""

    payload: np.ndarray
    tag_valid: bool
    n_symbols: int


class SecureLink:
    """An authenticated 802.11a link: MAC-then-modulate."""

    def __init__(self, key: bytes, rate_mbps: int = 54,
                 soft: bool = False) -> None:
        if len(key) != 16:
            raise ConfigurationError("AES-128 key must be 16 bytes")
        self.key = key
        self.transmitter = Transmitter(rate_mbps)
        self.receiver = Receiver(rate_mbps, soft=soft)

    def transmit(self, payload_bits: np.ndarray) -> np.ndarray:
        """Append the CBC-MAC tag and modulate."""
        payload_bits = np.asarray(payload_bits, dtype=np.uint8)
        if len(payload_bits) % 8:
            raise ConfigurationError(
                "payload must be a whole number of bytes"
            )
        tag = cbc_mac(_bits_to_bytes(payload_bits), self.key)
        frame = np.concatenate([payload_bits, _bytes_to_bits(tag)])
        return self.transmitter.transmit(frame)

    def receive(self, samples: np.ndarray,
                payload_bits: int) -> SecureReceiveResult:
        """Demodulate, decode, and verify the authentication tag."""
        if payload_bits % 8:
            raise ConfigurationError(
                "payload must be a whole number of bytes"
            )
        total = payload_bits + TAG_BITS
        result = self.receiver.receive(samples, payload_bits=total)
        payload = result.bits[:payload_bits]
        received_tag = _bits_to_bytes(result.bits[payload_bits:])
        expected_tag = cbc_mac(_bits_to_bytes(payload), self.key)
        return SecureReceiveResult(
            payload=payload,
            tag_valid=received_tag == expected_tag,
            n_symbols=result.n_symbols,
        )
