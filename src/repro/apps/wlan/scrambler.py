"""802.11a scrambler: the x^7 + x^4 + 1 LFSR (clause 17.3.5.4).

Scrambling and descrambling are the same XOR operation; the pilot
polarity sequence p_n of clause 17.3.5.9 is this generator run from
the all-ones state.
"""

from __future__ import annotations

import numpy as np


class Scrambler:
    """Self-synchronizing frame-synchronous scrambler."""

    def __init__(self, seed: int = 0b1011101) -> None:
        if not 1 <= seed <= 0x7F:
            raise ValueError("seed must be a non-zero 7-bit value")
        self._state = seed
        self._seed = seed

    def reset(self, seed: int | None = None) -> None:
        """Return to the initial (or a new) seed."""
        if seed is not None:
            if not 1 <= seed <= 0x7F:
                raise ValueError("seed must be a non-zero 7-bit value")
            self._seed = seed
        self._state = self._seed

    def sequence(self, count: int) -> np.ndarray:
        """The next ``count`` pseudo-random bits."""
        out = np.empty(count, dtype=np.uint8)
        state = self._state
        for index in range(count):
            bit = ((state >> 6) ^ (state >> 3)) & 1
            state = ((state << 1) | bit) & 0x7F
            out[index] = bit
        self._state = state
        return out

    def process(self, bits: np.ndarray) -> np.ndarray:
        """XOR the data with the scrambling sequence."""
        bits = np.asarray(bits, dtype=np.uint8)
        return bits ^ self.sequence(len(bits))


def pilot_polarity(count: int) -> np.ndarray:
    """Pilot polarity p_0..p_{count-1} as +/-1 (clause 17.3.5.9)."""
    generator = Scrambler(seed=0x7F)
    bits = generator.sequence(count)
    return 1 - 2 * bits.astype(np.int8)
