"""802.11a receiver: the paper's four-component RX chain.

FFT -> demodulation -> de-interleaving -> Viterbi decoding, exactly
the decomposition of Table 4 (FFT 2 tiles @ 90 MHz, demod/deint
1 tile @ 60 MHz, Viterbi ACS 16 tiles @ 540 MHz, traceback 1 tile
@ 330 MHz).  A one-tap pilot-based equalizer corrects flat channel
gain before demapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.apps.wlan.convcode import depuncture
from repro.apps.wlan.frame import (
    DATA_SUBCARRIERS,
    LONG_PREAMBLE_SAMPLES,
    PILOT_SUBCARRIERS,
    SYMBOL_SAMPLES,
    disassemble_symbol,
    estimate_channel,
    rate_parameters,
)
from repro.apps.wlan.interleaver import deinterleave
from repro.apps.wlan.modulation import Demodulator, SoftDemodulator
from repro.apps.wlan.scrambler import Scrambler
from repro.apps.wlan.viterbi import ViterbiDecoder
from repro.sdf.graph import SdfGraph


@dataclass(frozen=True)
class ReceiveResult:
    """Decoded payload plus per-stage diagnostics."""

    bits: np.ndarray
    n_symbols: int
    channel_gain: complex
    coded_bit_errors_estimate: int


class Receiver:
    """Time-domain samples in, information bits out.

    ``soft=True`` replaces hard subcarrier decisions with max-log
    soft values, which the Viterbi decoder consumes directly.
    """

    def __init__(self, rate_mbps: int = 54,
                 scrambler_seed: int = 0b1011101,
                 soft: bool = False) -> None:
        self.parameters = rate_parameters(rate_mbps)
        self.scrambler_seed = scrambler_seed
        self.soft = soft
        self._demodulator = Demodulator(self.parameters.n_bpsc)
        self._soft_demodulator = SoftDemodulator(self.parameters.n_bpsc)
        self._viterbi = ViterbiDecoder()

    def receive(self, samples: np.ndarray,
                payload_bits: int | None = None,
                preamble: bool = False) -> ReceiveResult:
        """Demodulate and decode a DATA-field sample stream.

        With ``preamble`` the first 160 samples are the long training
        preamble: the receiver estimates the channel per subcarrier
        and equalizes each one individually, handling
        frequency-selective (multipath) channels the flat pilot
        equalizer cannot.
        """
        samples = np.asarray(samples, dtype=np.complex128)
        channel_data = None
        channel_pilots = None
        if preamble:
            if len(samples) < LONG_PREAMBLE_SAMPLES:
                raise ConfigurationError(
                    "stream shorter than the long preamble"
                )
            estimate = estimate_channel(
                samples[:LONG_PREAMBLE_SAMPLES]
            )
            channel_data = np.array(
                [estimate[k] for k in DATA_SUBCARRIERS]
            )
            channel_pilots = np.array(
                [estimate[k] for k in PILOT_SUBCARRIERS]
            )
            samples = samples[LONG_PREAMBLE_SAMPLES:]
        if len(samples) % SYMBOL_SAMPLES:
            raise ConfigurationError(
                f"sample count {len(samples)} is not a whole number of "
                f"{SYMBOL_SAMPLES}-sample symbols"
            )
        n_symbols = len(samples) // SYMBOL_SAMPLES
        if n_symbols == 0:
            raise ConfigurationError("no OFDM symbols to decode")

        demap = (self._soft_demodulator.demap_soft if self.soft
                 else self._demodulator.demap)
        symbol_bits = []
        gains = []
        for index in range(n_symbols):
            segment = samples[index * SYMBOL_SAMPLES:
                              (index + 1) * SYMBOL_SAMPLES]
            data, pilots = disassemble_symbol(segment, index)
            if channel_data is not None:
                data = data / channel_data
                pilots = pilots / channel_pilots
            gain = pilots.mean()  # pilots are +1 after polarity removal
            gains.append(gain)
            if abs(gain) > 1e-9:
                data = data / gain
            symbol_bits.append(demap(data))
        coded = np.concatenate(symbol_bits)

        parameters = self.parameters
        deinterleaved = deinterleave(
            coded, parameters.n_cbps, parameters.n_bpsc
        )
        soft = depuncture(
            deinterleaved.astype(np.float64), parameters.coding_rate
        )
        scrambled = self._viterbi.decode(soft, terminated=True)
        descrambler = Scrambler(self.scrambler_seed)
        bits = descrambler.process(scrambled)
        if payload_bits is not None:
            if payload_bits > len(bits):
                raise ConfigurationError(
                    "payload longer than the decoded stream"
                )
            bits = bits[:payload_bits]
        return ReceiveResult(
            bits=bits,
            n_symbols=n_symbols,
            channel_gain=complex(np.mean(gains)),
            coded_bit_errors_estimate=0,
        )


#: Calibrated per-firing cycle costs (one tile); one SDF iteration is
#: one OFDM symbol (4 us => 0.25 M symbols/s).  Table 4 anchors:
#: FFT 2 tiles @ 90 MHz -> 720 cycles/symbol; demod+deint 1 tile @
#: 60 MHz -> 240; Viterbi ACS 16 tiles @ 540 MHz -> 34560 (64 states x
#: 216 steps at 54 Mbps with SIMD/comm padding); traceback 1 tile @
#: 330 MHz -> 1320.
WLAN_ACTOR_CYCLES = {
    "fft": 720.0,
    "demod_deint": 240.0,
    "viterbi_acs": 34560.0,
    "viterbi_tb": 1320.0,
}


def wlan_sdf_graph() -> SdfGraph:
    """The 802.11a receiver as a four-actor SDF chain."""
    graph = SdfGraph("wlan_rx")
    graph.add_actor("fft", WLAN_ACTOR_CYCLES["fft"])
    graph.add_actor("demod_deint", WLAN_ACTOR_CYCLES["demod_deint"])
    graph.add_actor("viterbi_acs", WLAN_ACTOR_CYCLES["viterbi_acs"])
    graph.add_actor("viterbi_tb", WLAN_ACTOR_CYCLES["viterbi_tb"])
    graph.add_edge("fft", "demod_deint", produce=1, consume=1)
    graph.add_edge("demod_deint", "viterbi_acs", produce=1, consume=1)
    graph.add_edge("viterbi_acs", "viterbi_tb", produce=1, consume=1)
    return graph
