"""CBC-MAC over AES-128.

The authentication tag is the final CBC block: each 16-byte message
block is XORed into the running state and encrypted.  Messages are
length-prefixed and zero-padded, which closes CBC-MAC's classic
variable-length forgery.
"""

from __future__ import annotations

from repro.apps.aes.cipher import Aes128, BLOCK_BYTES


def _pad(message: bytes) -> bytes:
    prefix = len(message).to_bytes(8, "big")
    data = prefix + message
    remainder = len(data) % BLOCK_BYTES
    if remainder:
        data += b"\x00" * (BLOCK_BYTES - remainder)
    return data


def cbc_mac(message: bytes, key: bytes) -> bytes:
    """16-byte authentication tag for ``message`` under ``key``."""
    cipher = Aes128(key)
    state = bytes(BLOCK_BYTES)
    data = _pad(message)
    for start in range(0, len(data), BLOCK_BYTES):
        block = data[start:start + BLOCK_BYTES]
        state = cipher.encrypt(
            bytes(a ^ b for a, b in zip(state, block))
        )
    return state
