"""AES-128 and CBC-MAC (paper Section 5.1).

The paper composes an AES-based message authentication code with the
802.11a receiver to demonstrate multi-application voltage scaling
(16 tiles @ 110 MHz / 0.8 V in Table 4).  The cipher here is a full
FIPS-197 AES-128, validated against the standard's test vectors.
"""

from repro.apps.aes.cipher import Aes128, encrypt_block, expand_key
from repro.apps.aes.cbc_mac import cbc_mac

__all__ = ["Aes128", "encrypt_block", "expand_key", "cbc_mac"]
