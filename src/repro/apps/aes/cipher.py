"""AES-128 block cipher (FIPS-197), implemented from the spec.

SubBytes/ShiftRows/MixColumns/AddRoundKey over a column-major 4x4
state, with the S-box generated from the GF(2^8) inverse and affine
map rather than pasted as a table - so the algebra itself is tested.
"""

from __future__ import annotations

BLOCK_BYTES = 16
KEY_BYTES = 16
ROUNDS = 10


def _xtime(value: int) -> int:
    """Multiply by x in GF(2^8) modulo x^8+x^4+x^3+x+1."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def gf_multiply(a: int, b: int) -> int:
    """Full GF(2^8) product."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); inverse of 0 is 0."""
    if a == 0:
        return 0
    # a^(2^8 - 2) = a^254
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = gf_multiply(result, power)
        power = gf_multiply(power, power)
        exponent >>= 1
    return result


def _build_sbox() -> tuple:
    sbox = []
    for value in range(256):
        inverse = _gf_inverse(value)
        b = inverse
        result = 0
        for bit in range(8):
            result |= (
                ((b >> bit) ^ (b >> ((bit + 4) % 8)) ^ (b >> ((bit + 5) % 8))
                 ^ (b >> ((bit + 6) % 8)) ^ (b >> ((bit + 7) % 8))
                 ^ (0x63 >> bit)) & 1
            ) << bit
        sbox.append(result)
    inverse_box = [0] * 256
    for index, value in enumerate(sbox):
        inverse_box[value] = index
    return tuple(sbox), tuple(inverse_box)


SBOX, INV_SBOX = _build_sbox()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def expand_key(key: bytes) -> list:
    """Expand a 16-byte key into 11 round keys of 16 bytes."""
    if len(key) != KEY_BYTES:
        raise ValueError("AES-128 key must be 16 bytes")
    words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
    for round_index in range(4, 4 * (ROUNDS + 1)):
        temp = list(words[round_index - 1])
        if round_index % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= _RCON[round_index // 4 - 1]
        words.append(
            [a ^ b for a, b in zip(words[round_index - 4], temp)]
        )
    return [
        bytes(sum(words[4 * r:4 * r + 4], []))
        for r in range(ROUNDS + 1)
    ]


def _sub_bytes(state: list) -> list:
    return [SBOX[b] for b in state]


def _shift_rows(state: list) -> list:
    # state is column-major: state[4*c + r]
    out = list(state)
    for row in range(1, 4):
        values = [state[4 * col + row] for col in range(4)]
        values = values[row:] + values[:row]
        for col in range(4):
            out[4 * col + row] = values[col]
    return out


def _mix_columns(state: list) -> list:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col:4 * col + 4]
        out[4 * col + 0] = (gf_multiply(a[0], 2) ^ gf_multiply(a[1], 3)
                            ^ a[2] ^ a[3])
        out[4 * col + 1] = (a[0] ^ gf_multiply(a[1], 2)
                            ^ gf_multiply(a[2], 3) ^ a[3])
        out[4 * col + 2] = (a[0] ^ a[1] ^ gf_multiply(a[2], 2)
                            ^ gf_multiply(a[3], 3))
        out[4 * col + 3] = (gf_multiply(a[0], 3) ^ a[1] ^ a[2]
                            ^ gf_multiply(a[3], 2))
    return out


def _add_round_key(state: list, round_key: bytes) -> list:
    return [b ^ k for b, k in zip(state, round_key)]


def encrypt_block(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt one 16-byte block under a 16-byte key."""
    if len(plaintext) != BLOCK_BYTES:
        raise ValueError("AES block must be 16 bytes")
    round_keys = expand_key(key)
    state = _add_round_key(list(plaintext), round_keys[0])
    for round_index in range(1, ROUNDS):
        state = _sub_bytes(state)
        state = _shift_rows(state)
        state = _mix_columns(state)
        state = _add_round_key(state, round_keys[round_index])
    state = _sub_bytes(state)
    state = _shift_rows(state)
    state = _add_round_key(state, round_keys[ROUNDS])
    return bytes(state)


class Aes128:
    """An AES-128 instance with a precomputed key schedule."""

    def __init__(self, key: bytes) -> None:
        self._round_keys = expand_key(key)

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt one block (keys already scheduled)."""
        if len(plaintext) != BLOCK_BYTES:
            raise ValueError("AES block must be 16 bytes")
        state = _add_round_key(list(plaintext), self._round_keys[0])
        for round_index in range(1, ROUNDS):
            state = _sub_bytes(state)
            state = _shift_rows(state)
            state = _mix_columns(state)
            state = _add_round_key(state, self._round_keys[round_index])
        state = _sub_bytes(state)
        state = _shift_rows(state)
        state = _add_round_key(state, self._round_keys[ROUNDS])
        return bytes(state)
