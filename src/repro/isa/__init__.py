"""Blackfin-like instruction set for Synchroscalar tiles (Section 2.3).

The paper bases tiles on the ADI/Intel Blackfin DSP ISA [20] with
control hoisted into the per-column SIMD controller.  This subpackage
defines the register files, the instruction set (compute instructions
executed by tiles, control instructions executed by the controller),
a binary encoding, and a two-pass assembler.
"""

from repro.isa.registers import (
    ACCUMULATORS,
    COMM_REGISTER,
    DATA_REGISTERS,
    POINTER_REGISTERS,
    RegisterFile,
    register_index,
    register_name,
)
from repro.isa.instructions import Instruction, Opcode, ALL_TILES_MASK
from repro.isa.encoding import decode, encode
from repro.isa.assembler import assemble
from repro.isa.program import Program

__all__ = [
    "DATA_REGISTERS",
    "POINTER_REGISTERS",
    "ACCUMULATORS",
    "COMM_REGISTER",
    "RegisterFile",
    "register_index",
    "register_name",
    "Instruction",
    "Opcode",
    "ALL_TILES_MASK",
    "encode",
    "decode",
    "assemble",
    "Program",
]
