"""Program container: instructions, labels, and structural validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import AssemblyError
from repro.isa.instructions import BRANCH_OPCODES, Instruction, Opcode

#: Matches the DOU's four nested-loop counters (Section 2.3).
MAX_LOOP_DEPTH = 4


@dataclass(frozen=True)
class Program:
    """An assembled column program.

    ``labels`` maps label name to instruction address; ``symbols`` holds
    ``.equ`` constants for callers that want to introspect them.
    """

    instructions: tuple
    labels: dict = field(default_factory=dict)
    symbols: dict = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        self._validate_targets()
        self._validate_loops()

    def _validate_targets(self) -> None:
        for address, instr in enumerate(self.instructions):
            if instr.opcode in BRANCH_OPCODES:
                if not isinstance(instr.target, int):
                    raise AssemblyError(
                        f"{self.name}@{address}: unresolved target "
                        f"{instr.target!r}"
                    )
                if not 0 <= instr.target < len(self.instructions):
                    raise AssemblyError(
                        f"{self.name}@{address}: target {instr.target} "
                        f"outside program"
                    )

    def _validate_loops(self) -> None:
        depth = 0
        max_depth = 0
        for address, instr in enumerate(self.instructions):
            if instr.opcode is Opcode.LOOP:
                depth += 1
                max_depth = max(max_depth, depth)
            elif instr.opcode is Opcode.ENDLOOP:
                depth -= 1
                if depth < 0:
                    raise AssemblyError(
                        f"{self.name}@{address}: endloop without loop"
                    )
        if depth != 0:
            raise AssemblyError(f"{self.name}: {depth} unterminated loop(s)")
        if max_depth > MAX_LOOP_DEPTH:
            raise AssemblyError(
                f"{self.name}: loop nesting {max_depth} exceeds the "
                f"{MAX_LOOP_DEPTH}-deep hardware loop stack"
            )

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, address: int) -> Instruction:
        return self.instructions[address]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def address_of(self, label: str) -> int:
        """Address of a label."""
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblyError(f"{self.name}: unknown label {label!r}") from None

    def listing(self) -> str:
        """Human-readable disassembly with addresses and labels."""
        by_address = {}
        for label, address in self.labels.items():
            by_address.setdefault(address, []).append(label)
        lines = []
        for address, instr in enumerate(self.instructions):
            for label in by_address.get(address, ()):
                lines.append(f"{label}:")
            lines.append(f"  {address:4d}  {instr.text()}")
        return "\n".join(lines)


def halting(program: Program) -> bool:
    """True when the program ends in an explicit HALT."""
    return bool(program.instructions) and (
        program.instructions[-1].opcode is Opcode.HALT
    )
