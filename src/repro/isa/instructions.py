"""Instruction set definition.

Compute instructions execute on every active tile of a column (SIMD);
control instructions execute inside the SIMD controller and never reach
the tiles (Section 2.2).  Communication instructions move values
between the register file and the tile's read/write buffers, which the
DOU drains/fills on its static schedule (Section 2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import AssemblyError

#: Tile-enable mask with all four tiles of a column active.
ALL_TILES_MASK = 0xF


class Opcode(enum.Enum):
    """Every operation understood by the column front end."""

    # tile compute
    NOP = "nop"
    MOVI = "movi"      # dst <- imm
    MOV = "mov"        # dst <- src1
    ADD = "add"        # dst <- src1 + src2
    ADDI = "addi"      # dst <- src1 + imm
    SUB = "sub"        # dst <- src1 - src2
    AND = "and"
    OR = "or"
    XOR = "xor"
    MIN = "min"        # signed minimum
    MAX = "max"        # signed maximum
    NEG = "neg"        # dst <- -src1
    ABS = "abs"        # dst <- |src1|
    ASR = "asr"        # arithmetic shift right by imm
    LSL = "lsl"        # logical shift left by imm
    LSR = "lsr"        # logical shift right by imm
    MUL = "mul"        # dst <- low 32 of src1 * src2 (signed)
    MULH = "mulh"      # dst <- high 32 of src1 * src2 (signed)
    MAC = "mac"        # accumulator dst += src1 * src2 (signed, 40-bit)
    TID = "tid"        # dst <- tile index within the column
    # tile memory
    LD = "ld"          # dst <- mem[ptr + offset]; optional post-increment
    ST = "st"          # mem[ptr + offset] <- src1; optional post-increment
    # tile communication
    SEND = "send"      # write buffer <- src1
    RECV = "recv"      # dst <- read buffer
    # controller-resident control
    JUMP = "jump"
    BEQ = "beq"        # branch if src1 == 0 (single-cycle stall)
    BNE = "bne"        # branch if src1 != 0
    BLT = "blt"        # branch if src1 < 0 (signed)
    BGE = "bge"        # branch if src1 >= 0 (signed)
    LOOP = "loop"      # zero-overhead loop, imm iterations
    ENDLOOP = "endloop"
    TMASK = "tmask"    # set active-tile mask to imm
    HALT = "halt"


CONTROL_OPCODES = frozenset({
    Opcode.JUMP, Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
    Opcode.LOOP, Opcode.ENDLOOP, Opcode.TMASK, Opcode.HALT,
})

BRANCH_OPCODES = frozenset({
    Opcode.JUMP, Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
})

CONDITIONAL_BRANCHES = frozenset({
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
})

MEMORY_OPCODES = frozenset({Opcode.LD, Opcode.ST})

#: opcode -> (has_dst, n_srcs, has_imm, has_target)
_SIGNATURES = {
    Opcode.NOP: (False, 0, False, False),
    Opcode.MOVI: (True, 0, True, False),
    Opcode.MOV: (True, 1, False, False),
    Opcode.ADD: (True, 2, False, False),
    Opcode.ADDI: (True, 1, True, False),
    Opcode.SUB: (True, 2, False, False),
    Opcode.AND: (True, 2, False, False),
    Opcode.OR: (True, 2, False, False),
    Opcode.XOR: (True, 2, False, False),
    Opcode.MIN: (True, 2, False, False),
    Opcode.MAX: (True, 2, False, False),
    Opcode.NEG: (True, 1, False, False),
    Opcode.ABS: (True, 1, False, False),
    Opcode.ASR: (True, 1, True, False),
    Opcode.LSL: (True, 1, True, False),
    Opcode.LSR: (True, 1, True, False),
    Opcode.MUL: (True, 2, False, False),
    Opcode.MULH: (True, 2, False, False),
    Opcode.MAC: (True, 2, False, False),
    Opcode.TID: (True, 0, False, False),
    Opcode.LD: (True, 0, False, False),
    Opcode.ST: (False, 1, False, False),
    Opcode.SEND: (False, 1, False, False),
    Opcode.RECV: (True, 0, False, False),
    Opcode.JUMP: (False, 0, False, True),
    Opcode.BEQ: (False, 1, False, True),
    Opcode.BNE: (False, 1, False, True),
    Opcode.BLT: (False, 1, False, True),
    Opcode.BGE: (False, 1, False, True),
    Opcode.LOOP: (False, 0, True, False),
    Opcode.ENDLOOP: (False, 0, False, False),
    Opcode.TMASK: (False, 0, True, False),
    Opcode.HALT: (False, 0, False, False),
}


#: Field names pickled by Instruction.__getstate__ (the dataclass
#: fields, excluding any cached_property values sharing __dict__).
_SIGNATURE_FIELDS = (
    "opcode", "dst", "srcs", "imm", "target", "ptr", "offset",
    "post_increment", "mask",
)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``target`` holds a label name before assembly resolution and an
    integer address afterwards.  For LD/ST, ``ptr``/``offset``/
    ``post_increment`` describe the addressing mode.
    """

    opcode: Opcode
    dst: str | None = None
    srcs: tuple = ()
    imm: int | None = None
    target: object = None
    ptr: str | None = None
    offset: int = 0
    post_increment: bool = False
    mask: int = ALL_TILES_MASK

    def __post_init__(self) -> None:
        has_dst, n_srcs, has_imm, has_target = _SIGNATURES[self.opcode]
        if has_dst and self.dst is None:
            raise AssemblyError(f"{self.opcode.value}: missing destination")
        if not has_dst and self.dst is not None:
            raise AssemblyError(f"{self.opcode.value}: unexpected destination")
        if len(self.srcs) != n_srcs:
            raise AssemblyError(
                f"{self.opcode.value}: expected {n_srcs} sources, "
                f"got {len(self.srcs)}"
            )
        if has_imm and self.imm is None:
            raise AssemblyError(f"{self.opcode.value}: missing immediate")
        if has_target and self.target is None:
            raise AssemblyError(f"{self.opcode.value}: missing branch target")
        if self.opcode in MEMORY_OPCODES and self.ptr is None:
            raise AssemblyError(f"{self.opcode.value}: missing pointer operand")
        if not 0 <= self.mask <= ALL_TILES_MASK:
            raise AssemblyError(f"tile mask {self.mask:#x} out of range")
        if self.opcode is Opcode.LOOP and (self.imm is None or self.imm < 1):
            raise AssemblyError("loop count must be at least 1")

    def __getstate__(self) -> dict:
        """Pickle only the declared fields.

        ``cached_property`` values share the instance ``__dict__``;
        letting them into the pickle stream would make content-hash
        caches (``repro.sim.batch``) see two byte representations of
        one instruction depending on what has been executed so far.
        """
        names = _SIGNATURE_FIELDS
        state = self.__dict__
        return {name: state[name] for name in names}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @cached_property
    def is_control(self) -> bool:
        """True when the SIMD controller consumes this instruction.

        Cached: the check sits on the controller's per-cycle fetch
        path and the instruction is immutable.
        """
        return self.opcode in CONTROL_OPCODES

    @cached_property
    def is_conditional_branch(self) -> bool:
        """True for the branches that incur the single-cycle stall."""
        return self.opcode in CONDITIONAL_BRANCHES

    def with_target(self, target: int) -> "Instruction":
        """Copy with the branch target resolved to an address."""
        return Instruction(
            opcode=self.opcode, dst=self.dst, srcs=self.srcs, imm=self.imm,
            target=target, ptr=self.ptr, offset=self.offset,
            post_increment=self.post_increment, mask=self.mask,
        )

    def text(self) -> str:
        """Render back to assembly-like text (used by traces/tests)."""
        parts = [self.opcode.value]
        operands = []
        if self.dst is not None:
            operands.append(self.dst.lower())
        if self.opcode in MEMORY_OPCODES:
            inc = "++" if self.post_increment else ""
            if self.offset:
                operands.append(f"[{self.ptr.lower()}+{self.offset}]")
            else:
                operands.append(f"[{self.ptr.lower()}{inc}]")
        operands.extend(s.lower() for s in self.srcs)
        if self.imm is not None:
            operands.append(str(self.imm))
        if self.target is not None:
            operands.append(str(self.target))
        if operands:
            parts.append(" " + ", ".join(operands))
        return "".join(parts)
