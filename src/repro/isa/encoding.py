"""Binary encoding of instructions into 64-bit words.

The layout mirrors the style of Blackfin encodings but is our own
(the paper never publishes one):

    [63:58] opcode        [57:54] tile mask
    [53:49] dst + 1       [48:44] src1 + 1      [43:39] src2 + 1
    [38:34] ptr + 1       [33]    post-increment
    [32]    payload-present
    [31:0]  payload: immediate (signed), branch target (unsigned),
            or memory offset (signed) -- disambiguated by the opcode

Register slots store ``index + 1`` so zero means "absent".
"""

from __future__ import annotations

from repro.errors import AssemblyError
from repro.isa.instructions import (
    Instruction,
    MEMORY_OPCODES,
    Opcode,
    _SIGNATURES,
)
from repro.isa.registers import register_index, register_name

_OPCODES = tuple(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}

_PAYLOAD_BITS = 32
_PAYLOAD_MASK = (1 << _PAYLOAD_BITS) - 1
_PAYLOAD_MIN = -(1 << (_PAYLOAD_BITS - 1))
_PAYLOAD_MAX = (1 << (_PAYLOAD_BITS - 1)) - 1


def _reg_slot(name: str | None) -> int:
    return 0 if name is None else register_index(name) + 1


def _slot_reg(slot: int) -> str | None:
    return None if slot == 0 else register_name(slot - 1)


def _payload_of(instr: Instruction) -> tuple:
    """(payload value, present flag) for one instruction."""
    _, _, has_imm, has_target = _SIGNATURES[instr.opcode]
    if has_imm:
        return instr.imm, True
    if has_target:
        if not isinstance(instr.target, int):
            raise AssemblyError(
                f"cannot encode unresolved target {instr.target!r}"
            )
        return instr.target, True
    if instr.opcode in MEMORY_OPCODES:
        return instr.offset, True
    return 0, False


def encode(instr: Instruction) -> int:
    """Encode one instruction into a 64-bit word."""
    payload, present = _payload_of(instr)
    if not _PAYLOAD_MIN <= payload <= _PAYLOAD_MAX:
        raise AssemblyError(f"payload {payload} exceeds 32 bits")
    word = _OPCODE_INDEX[instr.opcode] << 58
    word |= (instr.mask & 0xF) << 54
    word |= _reg_slot(instr.dst) << 49
    word |= _reg_slot(instr.srcs[0] if len(instr.srcs) > 0 else None) << 44
    word |= _reg_slot(instr.srcs[1] if len(instr.srcs) > 1 else None) << 39
    word |= _reg_slot(instr.ptr) << 34
    word |= (1 if instr.post_increment else 0) << 33
    word |= (1 if present else 0) << 32
    word |= payload & _PAYLOAD_MASK
    return word


def decode(word: int) -> Instruction:
    """Invert :func:`encode`."""
    if not 0 <= word < (1 << 64):
        raise AssemblyError("encoded word must fit in 64 bits")
    opcode_index = (word >> 58) & 0x3F
    if opcode_index >= len(_OPCODES):
        raise AssemblyError(f"unknown opcode index {opcode_index}")
    opcode = _OPCODES[opcode_index]
    mask = (word >> 54) & 0xF
    dst = _slot_reg((word >> 49) & 0x1F)
    src1 = _slot_reg((word >> 44) & 0x1F)
    src2 = _slot_reg((word >> 39) & 0x1F)
    ptr = _slot_reg((word >> 34) & 0x1F)
    post_increment = bool((word >> 33) & 1)
    present = bool((word >> 32) & 1)
    raw = word & _PAYLOAD_MASK
    signed = raw - (1 << _PAYLOAD_BITS) if raw >> (_PAYLOAD_BITS - 1) else raw

    srcs = tuple(s for s in (src1, src2) if s is not None)
    _, _, has_imm, has_target = _SIGNATURES[opcode]
    imm = signed if (has_imm and present) else None
    target = raw if (has_target and present) else None
    offset = signed if (opcode in MEMORY_OPCODES and present) else 0
    return Instruction(
        opcode=opcode, dst=dst, srcs=srcs, imm=imm, target=target,
        ptr=ptr, offset=offset, post_increment=post_increment, mask=mask,
    )
