"""Two-pass assembler for the Synchroscalar column ISA.

Syntax (case-insensitive, one instruction per line):

    ; comment                        # comment
    .equ taps, 21                    named constant
    start:                           label (may share a line)
        movi r0, 0
        movi p0, 0x100
        loop taps                    zero-overhead loop
            ld r1, [p0++]            post-increment load
            mac a0, r1, r2
        endloop
        mov r7, a0
        send r7                      write buffer <- r7
        recv r3                      r3 <- read buffer
        bne r3, start
        halt

Operands: data/pointer/accumulator registers, immediates (decimal,
hex, negative, or ``.equ`` symbols), memory references ``[pN]``,
``[pN+k]``, ``[pN-k]``, ``[pN++]``, and labels.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.isa.instructions import (
    Instruction,
    MEMORY_OPCODES,
    Opcode,
    _SIGNATURES,
)
from repro.isa.program import Program
from repro.isa.registers import ALL_REGISTERS

_MNEMONICS = {op.value: op for op in Opcode}
_REGISTERS = {name.lower() for name in ALL_REGISTERS}
_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_RE = re.compile(
    r"^\[\s*(?P<ptr>[pP][0-5])\s*"
    r"(?:(?P<inc>\+\+)|(?P<sign>[+-])\s*(?P<off>\w+))?\s*\]$"
)


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_int(token: str, symbols: dict, context: str) -> int:
    token = token.strip()
    if token.lower() in symbols:
        return symbols[token.lower()]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"{context}: bad immediate {token!r}") from None


def _split_operands(text: str) -> list:
    """Split on commas that are not inside a memory bracket."""
    operands = []
    depth = 0
    current = []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


class _Line:
    """One source line after comment stripping and label extraction."""

    def __init__(self, number: int, mnemonic: str, operands: list) -> None:
        self.number = number
        self.mnemonic = mnemonic
        self.operands = operands


def _first_pass(source: str, name: str) -> tuple:
    """Collect labels, symbols, and raw instruction lines."""
    labels: dict = {}
    symbols: dict = {}
    lines: list = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw)
        if not text:
            continue
        context = f"{name}:{number}"
        if text.startswith(".equ"):
            parts = _split_operands(text[len(".equ"):])
            if len(parts) != 2:
                raise AssemblyError(f"{context}: .equ needs name, value")
            symbol = parts[0].lower()
            if not _LABEL_RE.match(symbol):
                raise AssemblyError(f"{context}: bad symbol name {symbol!r}")
            symbols[symbol] = _parse_int(parts[1], symbols, context)
            continue
        while True:
            match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s*:\s*", text)
            if not match:
                break
            label = match.group(1).lower()
            if label in labels:
                raise AssemblyError(f"{context}: duplicate label {label!r}")
            if label in _MNEMONICS or label in _REGISTERS:
                raise AssemblyError(
                    f"{context}: label {label!r} shadows a mnemonic/register"
                )
            labels[label] = len(lines)
            text = text[match.end():]
        if not text:
            continue
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        if mnemonic not in _MNEMONICS:
            raise AssemblyError(f"{context}: unknown mnemonic {mnemonic!r}")
        lines.append(_Line(number, mnemonic, _split_operands(operand_text)))
    return labels, symbols, lines


def _classify(token: str) -> str:
    token = token.strip()
    if token.lower() in _REGISTERS:
        return "register"
    if token.startswith("["):
        return "memory"
    return "other"


def _build_instruction(
    line: _Line, labels: dict, symbols: dict, name: str
) -> Instruction:
    context = f"{name}:{line.number}"
    opcode = _MNEMONICS[line.mnemonic]
    has_dst, n_srcs, has_imm, has_target = _SIGNATURES[opcode]

    operands = list(line.operands)
    dst = None
    srcs: list = []
    imm = None
    target = None
    ptr = None
    offset = 0
    post_increment = False

    def take(kind_hint: str) -> str:
        if not operands:
            raise AssemblyError(f"{context}: missing {kind_hint} operand")
        return operands.pop(0)

    try:
        if has_dst:
            token = take("destination")
            if _classify(token) != "register":
                raise AssemblyError(
                    f"{context}: destination must be a register, "
                    f"got {token!r}"
                )
            dst = token.upper()
        if opcode in MEMORY_OPCODES:
            token = take("memory")
            match = _MEM_RE.match(token)
            if not match:
                raise AssemblyError(f"{context}: bad memory operand {token!r}")
            ptr = match.group("ptr").upper()
            if match.group("inc"):
                post_increment = True
            elif match.group("off") is not None:
                offset = _parse_int(match.group("off"), symbols, context)
                if match.group("sign") == "-":
                    offset = -offset
        for _ in range(n_srcs):
            token = take("source")
            if _classify(token) != "register":
                raise AssemblyError(
                    f"{context}: source must be a register, got {token!r}"
                )
            srcs.append(token.upper())
        if has_imm:
            imm = _parse_int(take("immediate"), symbols, context)
        if has_target:
            token = take("target").lower()
            if token not in labels:
                raise AssemblyError(f"{context}: unknown label {token!r}")
            target = labels[token]
        if operands:
            raise AssemblyError(
                f"{context}: unexpected operand(s) {operands!r}"
            )
        return Instruction(
            opcode=opcode, dst=dst, srcs=tuple(srcs), imm=imm,
            target=target, ptr=ptr, offset=offset,
            post_increment=post_increment,
        )
    except AssemblyError:
        raise
    except Exception as exc:  # pragma: no cover - defensive
        raise AssemblyError(f"{context}: {exc}") from exc


def assemble(source: str, name: str = "program") -> Program:
    """Assemble source text into a :class:`Program`."""
    labels, symbols, lines = _first_pass(source, name)
    for label, address in labels.items():
        if address > len(lines):
            raise AssemblyError(f"{name}: label {label!r} past end")
    instructions = tuple(
        _build_instruction(line, labels, symbols, name) for line in lines
    )
    return Program(
        instructions=instructions, labels=labels, symbols=symbols, name=name
    )
