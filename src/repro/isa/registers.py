"""Register architecture of a Synchroscalar tile.

Modelled on the Blackfin register set [20]:

* R0..R7  -- 32-bit data registers; R7 is the designated communication
             register whose bus alignment the DOU controls (Section 2.3).
* P0..P5  -- pointer registers for tile-local memory addressing.
* A0, A1  -- 40-bit multiply-accumulate registers.

All arithmetic wraps at the register width (two's complement).
"""

from __future__ import annotations

from repro.errors import SimulationError

DATA_REGISTERS = tuple(f"R{i}" for i in range(8))
POINTER_REGISTERS = tuple(f"P{i}" for i in range(6))
ACCUMULATORS = ("A0", "A1")
COMM_REGISTER = "R7"

ALL_REGISTERS = DATA_REGISTERS + POINTER_REGISTERS + ACCUMULATORS

_INDEX = {name: i for i, name in enumerate(ALL_REGISTERS)}

DATA_WIDTH = 32
ACCUMULATOR_WIDTH = 40

_DATA_MASK = (1 << DATA_WIDTH) - 1
_ACC_MASK = (1 << ACCUMULATOR_WIDTH) - 1


def register_index(name: str) -> int:
    """Dense index of a register name (used by the binary encoding)."""
    try:
        return _INDEX[name.upper()]
    except KeyError:
        raise SimulationError(f"unknown register {name!r}") from None


def register_name(index: int) -> str:
    """Inverse of :func:`register_index`."""
    if not 0 <= index < len(ALL_REGISTERS):
        raise SimulationError(f"register index {index} out of range")
    return ALL_REGISTERS[index]


def is_accumulator(name: str) -> bool:
    """True for A0/A1."""
    return name.upper() in ACCUMULATORS


def is_pointer(name: str) -> bool:
    """True for P0..P5."""
    return name.upper() in POINTER_REGISTERS


def wrap32(value: int) -> int:
    """Wrap to unsigned 32-bit."""
    return value & _DATA_MASK


def wrap40(value: int) -> int:
    """Wrap to unsigned 40-bit (accumulators)."""
    return value & _ACC_MASK


def signed32(value: int) -> int:
    """Interpret an unsigned 32-bit pattern as two's-complement."""
    value &= _DATA_MASK
    return value - (1 << DATA_WIDTH) if value >> (DATA_WIDTH - 1) else value


def signed40(value: int) -> int:
    """Interpret an unsigned 40-bit pattern as two's-complement."""
    value &= _ACC_MASK
    return value - (1 << ACCUMULATOR_WIDTH) if value >> (ACCUMULATOR_WIDTH - 1) else value


_ACC_SET = frozenset(ACCUMULATORS)

#: Register lookups sit on the innermost simulation loop (one read or
#: write per operand per issued instruction across four tiles), so the
#: register file keeps an allocation-free fast path for names that are
#: already canonical (the assembler emits them uppercase) and only
#: falls back to ``str.upper`` normalization for hand-written callers.


class RegisterFile:
    """All architectural registers of one tile."""

    def __init__(self) -> None:
        self._values = {name: 0 for name in ALL_REGISTERS}

    def read(self, name: str) -> int:
        """Unsigned value of a register."""
        value = self._values.get(name)
        if value is not None:
            return value
        name = name.upper()
        if name not in self._values:
            raise SimulationError(f"unknown register {name!r}")
        return self._values[name]

    def read_signed(self, name: str) -> int:
        """Two's-complement value of a register."""
        raw = self.read(name)
        if name in _ACC_SET or is_accumulator(name):
            return signed40(raw)
        return signed32(raw)

    def write(self, name: str, value: int) -> None:
        """Write with width-appropriate wrapping."""
        values = self._values
        if name not in values:
            name = name.upper()
            if name not in values:
                raise SimulationError(f"unknown register {name!r}")
        if name in _ACC_SET:
            values[name] = value & _ACC_MASK
        else:
            values[name] = value & _DATA_MASK

    def snapshot(self) -> dict:
        """Copy of all register values (for tests and traces)."""
        return dict(self._values)
