"""Validate a CI trace artifact as loadable Chrome-trace JSON.

CI's engines smoke step writes a Perfetto/Chrome-trace timeline next
to ``BENCH_engine.json`` (``runner --engines --trace``); this check
fails the build when that artifact would not load in
``chrome://tracing`` / https://ui.perfetto.dev - a malformed trace
uploaded silently is worse than none, because whoever downloads it
discovers the breakage days later with the run long gone.

Usage::

    python tools/check_trace_artifact.py bench-artifacts/trace.json
    python tools/check_trace_artifact.py trace.json \
        --require-track column0 --require-track governor

Checks (stdlib only - CI runs the tools without the package on the
path):

* the file parses as JSON and carries a non-empty ``traceEvents``
  list;
* every event has a known phase, a name, integer pid/tid, a numeric
  ``ts`` (metadata excepted), and complete events a non-negative
  ``dur``;
* at least one per-clock-domain track (a ``column<i>`` thread-name
  metadata row) exists, plus any explicitly required track names.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_KNOWN_PHASES = ("X", "i", "C", "M", "B", "E")


def check(payload, required_tracks: list) -> list:
    """Problem strings for one trace payload (empty = valid)."""
    problems = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    if not events:
        return ["traceEvents is empty"]
    tracks = set()
    for index, entry in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = entry.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        name = entry.get("name")
        if not isinstance(name, str):
            problems.append(f"{where}: missing name")
            continue
        for field in ("pid", "tid"):
            if not isinstance(entry.get(field), int):
                problems.append(f"{where}: non-integer {field}")
        if phase != "M" and not isinstance(
            entry.get("ts"), (int, float)
        ):
            problems.append(f"{where}: non-numeric ts")
        if phase == "X":
            duration = entry.get("dur")
            if not isinstance(duration, (int, float)):
                problems.append(f"{where}: complete event missing dur")
            elif duration < 0:
                problems.append(f"{where}: negative dur {duration}")
        if phase == "M" and name == "thread_name":
            track = entry.get("args", {}).get("name")
            if isinstance(track, str):
                tracks.add(track)
    if not any(
        track.startswith("column") for track in tracks
    ):
        problems.append(
            "no per-clock-domain track (column<i>) in the trace; "
            f"tracks present: {sorted(tracks) or 'none'}"
        )
    for track in required_tracks:
        if track not in tracks:
            problems.append(
                f"required track {track!r} missing; present: "
                f"{sorted(tracks)}"
            )
    return problems


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a trace artifact is not valid "
                    "Chrome-trace JSON."
    )
    parser.add_argument(
        "trace", metavar="TRACE_JSON",
        help="the trace artifact to validate",
    )
    parser.add_argument(
        "--require-track", action="append", dest="tracks",
        default=[], metavar="NAME",
        help="fail unless a track with this thread name exists "
             "(repeatable)",
    )
    args = parser.parse_args(argv)
    try:
        payload = json.loads(Path(args.trace).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: {args.trace}: {error}", file=sys.stderr)
        return 1
    problems = check(payload, args.tracks)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    events = payload["traceEvents"]
    timed = sum(1 for e in events if e.get("ph") != "M")
    print(
        f"{args.trace}: valid Chrome trace "
        f"({timed} events, {len(events) - timed} metadata rows)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
