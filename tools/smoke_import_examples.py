#!/usr/bin/env python3
"""Import every ``examples/*.py`` module as a smoke test.

``python -m compileall`` catches syntax errors; this script catches
the next failure class — broken imports and renamed APIs — by
actually importing each example.  Every example guards its entry
point behind ``if __name__ == "__main__"``, so importing executes
only definitions, never a full run.

Run with the package importable (``PYTHONPATH=src``); the script adds
the repository's ``src/`` itself when needed, so it also works as
plain ``python tools/smoke_import_examples.py``.  Exits non-zero
listing every example that failed to import.
"""

from __future__ import annotations

import importlib.util
import sys
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> int:
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    examples = sorted((REPO_ROOT / "examples").glob("*.py"))
    if not examples:
        print("no examples found", file=sys.stderr)
        return 1
    failures = 0
    for path in examples:
        name = f"_example_smoke_{path.stem}"
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        try:
            spec.loader.exec_module(module)
        except Exception:
            failures += 1
            print(f"FAIL {path.relative_to(REPO_ROOT)}",
                  file=sys.stderr)
            traceback.print_exc()
        else:
            print(f"ok   {path.relative_to(REPO_ROOT)}")
        finally:
            sys.modules.pop(name, None)
    if failures:
        print(f"{failures} example(s) failed to import",
              file=sys.stderr)
        return 1
    print(f"all {len(examples)} examples import cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
