"""Replay one generated fuzz case verbosely from its two-integer repro.

A failing property sweep names its case as ``(seed N, index M)``;
this tool regenerates exactly that scenario (the generator is a pure
function of the pair), prints its full shape - topology, stages with
their word rates, graph edges, ladder, trace, drain allowance - and
then drives it through the standing invariant suite, reporting each
check as it lands.

Usage::

    PYTHONPATH=src python tools/repro_fuzz_case.py 11 18
"""

from __future__ import annotations

import argparse
import sys


def describe(generated) -> str:
    """Human-readable dump of one generated case."""
    scenario = generated.scenario
    preds = scenario.stage_predecessors
    lines = [
        f"case (seed {generated.seed}, index {generated.index}): "
        f"{generated.class_key}",
        f"  scenario key: {scenario.key}",
        f"  governor:     {generated.governor}",
        f"  topology:     {generated.topology} "
        f"({'linear chain' if scenario.is_linear else 'stage graph'})",
        f"  geometry:     frame {scenario.frame_ticks} ticks, "
        f"epoch {scenario.epoch_ticks} ticks, "
        f"drain allowance {scenario.drain_allowance_ticks} ticks",
        f"  ladder:       {list(scenario.divider_ladder)}",
        f"  stages:",
    ]
    for index, stage in enumerate(scenario.stages):
        edge = "head" if not preds[index] else \
            "<- " + ",".join(str(p) for p in preds[index])
        lines.append(
            f"    [{index}] {stage.name:<12} work {stage.work_per_word}"
            f"  {stage.words_in}:{stage.words_out}"
            f"  ({edge})"
        )
    lines.append(
        f"  trace:        {list(scenario.frame_loads)} "
        f"(quantum {scenario.load_quantum}, "
        f"exit scale {scenario.exit_scale})"
    )
    return "\n".join(lines)


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate and verbosely re-check one generated "
                    "fuzz case from its (seed, index) pair."
    )
    parser.add_argument("seed", type=int, help="suite seed")
    parser.add_argument("index", type=int,
                        help="case index within the seed's suite")
    args = parser.parse_args(argv)

    from repro.workloads.generate import (
        check_invariants,
        generate_scenario,
    )

    generated = generate_scenario(args.seed, args.index)
    print(describe(generated))
    print("running invariant suite (compiled x2 + reference)...")
    try:
        row = check_invariants(generated)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(
        f"PASS: {row['total_exit_words']} exit words over "
        f"{row['frames']} frames, {row['energy_nj']:.1f} nJ, "
        f"{row['transitions']} transitions, "
        f"{row['gate_segments']} gate segments "
        f"({row['rail_wakes']} wakes), "
        f"conservation error {row['conservation_error']:.3g}, "
        f"0 deadline misses"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
