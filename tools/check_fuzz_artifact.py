"""Validate a ``BENCH_fuzz.json`` property-sweep artifact.

The fuzz evaluation (``python -m repro.eval.runner --fuzz``) sweeps
one seed of the generative scenario engine through the invariant
suite and records per-class coverage counts.  CI validates the
artifact it uploads: the sweep must actually have run (nonzero
cases, zero failures), the stratified coverage must have landed -
every app and every topology exercised - and the worst observed
conservation error must sit inside the declared tolerance.

Stdlib-only on purpose (runs before any dependency install).

Usage::

    python tools/check_fuzz_artifact.py BENCH_fuzz.json
    python tools/check_fuzz_artifact.py BENCH_fuzz.json --min-cases 200
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Coverage axes the generator stratifies by; every member must have
#: a nonzero case count (mirrors repro.workloads.generate).
EXPECTED_APPS = ("aes", "ddc", "mpeg4", "stereo", "wlan")
EXPECTED_TOPOLOGIES = ("linear", "decimating", "fork_join")


def check(payload: dict, min_cases: int = 1) -> list:
    """Failure strings for one artifact payload (empty = pass)."""
    failures = []
    if payload.get("artifact") != "BENCH_fuzz":
        return [
            f"artifact field is {payload.get('artifact')!r}, "
            f"expected 'BENCH_fuzz'"
        ]
    cases = payload.get("cases")
    if not isinstance(cases, int) or isinstance(cases, bool) \
            or cases < min_cases:
        failures.append(
            f"cases must be an integer >= {min_cases}, got {cases!r}"
        )
    if payload.get("failures") != 0:
        failures.append(
            f"failures must be 0 (a failing sweep aborts before the "
            f"artifact), got {payload.get('failures')!r}"
        )
    if not isinstance(payload.get("seed"), int):
        failures.append(f"seed must be an integer, got "
                        f"{payload.get('seed')!r}")
    invariants = payload.get("invariants")
    if not isinstance(invariants, list) or not invariants:
        failures.append("invariants must be a non-empty list")

    coverage = payload.get("coverage")
    if not isinstance(coverage, dict):
        failures.append(
            f"coverage must be a mapping, got "
            f"{type(coverage).__name__}"
        )
        return failures
    for axis, expected in (
        ("apps", EXPECTED_APPS),
        ("topologies", EXPECTED_TOPOLOGIES),
    ):
        counts = coverage.get(axis)
        if not isinstance(counts, dict):
            failures.append(f"coverage[{axis!r}] missing")
            continue
        for member in expected:
            count = counts.get(member)
            if not isinstance(count, int) or count <= 0:
                failures.append(
                    f"coverage[{axis!r}][{member!r}] must be a "
                    f"positive case count, got {count!r} - the "
                    f"stratified sweep did not exercise it"
                )
    classes = coverage.get("classes")
    if isinstance(classes, dict) and isinstance(cases, int):
        total = sum(
            value for value in classes.values()
            if isinstance(value, int)
        )
        if total != cases:
            failures.append(
                f"per-class counts sum to {total}, not the declared "
                f"{cases} cases"
            )

    tolerance = payload.get("conservation_tolerance")
    worst = payload.get("worst_conservation_error")
    if not isinstance(tolerance, (int, float)) \
            or not isinstance(worst, (int, float)):
        failures.append(
            "conservation_tolerance and worst_conservation_error "
            "must both be numbers"
        )
    elif worst > tolerance:
        failures.append(
            f"worst conservation error {worst} exceeds the declared "
            f"tolerance {tolerance}"
        )
    return failures


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a BENCH_fuzz.json property-sweep "
                    "artifact: sweep ran, coverage landed, "
                    "conservation held."
    )
    parser.add_argument(
        "artifact", metavar="BENCH_FUZZ_JSON",
        help="a BENCH_fuzz.json emitted by repro.eval.runner --fuzz",
    )
    parser.add_argument(
        "--min-cases", type=int, default=1, metavar="N",
        help="minimum case count the sweep must have run "
             "(default 1; CI's fuzz lane passes 200)",
    )
    args = parser.parse_args(argv)
    payload = json.loads(Path(args.artifact).read_text())
    failures = check(payload, min_cases=args.min_cases)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    coverage = payload["coverage"]
    print(
        f"fuzz artifact valid: seed {payload['seed']}, "
        f"{payload['cases']} cases, "
        f"{len(coverage['classes'])} coverage classes, "
        f"worst conservation error "
        f"{payload['worst_conservation_error']:.3g}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
