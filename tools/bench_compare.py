"""Compare a fresh BENCH_engine.json against the committed baseline.

CI regenerates ``BENCH_engine.json`` on every commit (the smoke step
runs ``python -m repro.eval.runner --engines --profile``) but the
artifact itself is gitignored, so without a committed anchor a
gradual perf regression would only be visible by trawling artifact
history.  This tool diffs the fresh artifact against
``benchmarks/engine_baseline.json`` and fails when any workload's
speedup ratio regressed by more than the tolerance (default 20%).

Usage::

    python tools/bench_compare.py BENCH_engine.json
    python tools/bench_compare.py BENCH_engine.json \
        --baseline benchmarks/engine_baseline.json --tolerance 0.2

Rules:

* the ``smoke`` flags must match - smoke and full-size ratios measure
  different things (smoke runs are dominated by per-run fixed costs)
  and must never be compared;
* every workload in the baseline must appear in the fresh artifact
  (a silently dropped workload is a regression in coverage);
* a fresh speedup below ``(1 - tolerance) * baseline`` fails.
  Improvements are reported but never fail - refresh the baseline by
  copying a representative artifact over it when the trajectory moves
  up for good;
* when both artifacts carry ``--profile`` phase timings, a workload
  whose *dense-phase share* of compiled wall time grew by more than
  the tolerance (relative) fails too: dense ticking is the fallback
  tier, so its share creeping up means a striding tier (lockstep
  rounds, orbit batches) quietly stopped engaging even if the
  headline ratio still scrapes by;
* a fresh entry carrying a ``profile`` block must contain every
  counter in :data:`REQUIRED_PROFILE_COUNTERS`; missing ones fail
  with a named diff (a renamed or dropped counter would otherwise
  read as zero and silently pass);
* when the fresh artifact carries an ``outcomes`` block (the
  supervised batch plane's tallies), it is diffed against the
  baseline's (missing blocks read as all-zero - artifacts predating
  the block still compare), unknown keys inside it are ignored, and
  the comparison fails if the fresh run recorded any *degraded* or
  *retried* job: wall clocks from a run that silently fell back to
  the reference engine or burned attempts on retries are not
  comparable to a clean baseline;
* unknown keys anywhere in either artifact are ignored, and a
  baseline entry missing a field this tool reads is skipped with a
  note instead of failing - older tools must keep working as the
  artifact schema grows.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent.parent / "benchmarks" \
    / "engine_baseline.json"

# Compiled-engine phase buckets (profile_snapshot timing keys) that
# partition a run's attributed wall time.  Missing keys read as zero
# so artifacts from before a bucket existed still compare.
_PHASE_BUCKETS = ("dense_s", "sparse_s", "settle_s", "drain_s")

#: The declared profile schema: every counter a ``--profile`` run
#: must record.  Fresh entries carrying a ``profile`` block are
#: validated against this set - extra keys stay ignored (forward
#: compat), but a missing required counter fails with a named diff.
REQUIRED_PROFILE_COUNTERS = (
    "compile_s", "dense_s", "sparse_s", "settle_s", "drain_s",
    "dense_ticks", "batch_events", "batched_ticks", "sparse_steps",
    "parked_edges", "lockstep_batches", "orbit_laps",
    "fused_runner_calls", "runner_calls", "runner_edges",
    "vector_batches", "vector_iterations",
)


def validate_profile_schema(key: str, entry: dict) -> list:
    """Failure strings for one fresh entry's profile block.

    Empty when the entry has no profile block (runs without
    ``--profile``) or when every required counter is present.
    """
    profile = entry.get("profile")
    if not isinstance(profile, dict):
        return []
    missing = sorted(set(REQUIRED_PROFILE_COUNTERS) - set(profile))
    if missing:
        return [
            f"{key}: profile block is missing required counters: "
            + ", ".join(missing)
        ]
    return []


def _dense_share(entry: dict) -> float | None:
    """dense_s as a fraction of all phase buckets, or None.

    None when the entry has no profile or the buckets never ticked
    (profile timings only populate on ``--profile`` runs).
    """
    profile = entry.get("profile")
    if not isinstance(profile, dict):
        return None
    total = sum(float(profile.get(key, 0.0)) for key in _PHASE_BUCKETS)
    if total <= 0.0:
        return None
    return float(profile.get("dense_s", 0.0)) / total


#: Outcome counters diffed between artifacts.  Extra keys in either
#: block are ignored (forward compat); the two named in
#: :data:`OUTCOME_FAIL_KEYS` fail the comparison when nonzero in the
#: fresh artifact.
OUTCOME_KEYS = (
    "ok", "degraded", "failed", "timed_out", "worker_crashed",
    "retries", "cache_quarantined",
)

OUTCOME_FAIL_KEYS = ("degraded", "retries")


def _outcome_count(block: dict, key: str) -> int:
    """A counter read defensively: absent or malformed reads as 0."""
    value = block.get(key, 0)
    return value if isinstance(value, int) \
        and not isinstance(value, bool) else 0


def compare_outcomes(fresh: dict, baseline: dict) -> list:
    """Diff the supervised-job outcome blocks; returns failures.

    Prints a counter table when either artifact carries a block.  A
    missing block reads as all-zero (older artifacts keep
    comparing); a fresh run that recorded degraded or retried jobs
    fails - its wall clocks are not comparable.
    """
    fresh_block = fresh.get("outcomes")
    base_block = baseline.get("outcomes")
    if not isinstance(fresh_block, dict) \
            and not isinstance(base_block, dict):
        return []
    fresh_block = fresh_block if isinstance(fresh_block, dict) else {}
    base_block = base_block if isinstance(base_block, dict) else {}
    print(f"\n{'outcome':<18} {'baseline':>9} {'fresh':>9}")
    print("-" * 38)
    failures = []
    for key in OUTCOME_KEYS:
        base_value = _outcome_count(base_block, key)
        fresh_value = _outcome_count(fresh_block, key)
        note = ""
        if key in OUTCOME_FAIL_KEYS and fresh_value > 0:
            note = "  NOT-CLEAN"
            failures.append(
                f"fresh run recorded {fresh_value} {key} job(s); "
                f"benchmark timings from a degraded/retried run are "
                f"not comparable to the baseline"
            )
        print(f"{key:<18} {base_value:>9} {fresh_value:>9}{note}")
    return failures


def compare(fresh: dict, baseline: dict, tolerance: float) -> list:
    """Returns a list of failure strings (empty = pass), prints a table."""
    failures = []
    for artifact in (fresh, baseline):
        if artifact.get("artifact") != "BENCH_engine":
            failures.append(
                f"not a BENCH_engine artifact: "
                f"{artifact.get('artifact')!r}"
            )
            return failures
    if fresh.get("smoke") != baseline.get("smoke"):
        failures.append(
            f"smoke flags differ (fresh={fresh.get('smoke')}, "
            f"baseline={baseline.get('smoke')}); smoke and full-size "
            f"ratios are not comparable"
        )
        return failures
    fresh_workloads = fresh.get("workloads", {})
    baseline_workloads = baseline.get("workloads", {})
    header = (
        f"{'workload':<16} {'baseline':>9} {'fresh':>9} "
        f"{'change':>8}  verdict"
    )
    print(header)
    print("-" * len(header))
    floor_fraction = 1.0 - tolerance
    for key, base_entry in baseline_workloads.items():
        fresh_entry = fresh_workloads.get(key)
        if fresh_entry is None:
            failures.append(f"workload {key!r} missing from fresh run")
            print(f"{key:<16} {base_entry['speedup']:>8.2f}x "
                  f"{'-':>9} {'-':>8}  MISSING")
            continue
        failures.extend(validate_profile_schema(key, fresh_entry))
        base_speedup = base_entry.get("speedup")
        fresh_speedup = fresh_entry.get("speedup")
        if base_speedup is None or fresh_speedup is None:
            # Schema drift (an artifact generation that renamed or
            # dropped the field): nothing comparable, note and move on.
            print(f"{key:<16} {'-':>9} {'-':>9} {'-':>8}  SKIPPED "
                  f"(no speedup field)")
            continue
        change = (fresh_speedup - base_speedup) / base_speedup
        regressed = fresh_speedup < floor_fraction * base_speedup
        verdict = "REGRESSED" if regressed else "ok"
        base_share = _dense_share(base_entry)
        fresh_share = _dense_share(fresh_entry)
        share_note = ""
        if base_share is not None and fresh_share is not None:
            share_note = (
                f"  dense {base_share:.1%} -> {fresh_share:.1%}"
            )
            if fresh_share > (1.0 + tolerance) * base_share:
                verdict = "DENSE-SHARE"
                failures.append(
                    f"{key}: dense-phase share grew from "
                    f"{base_share:.1%} to {fresh_share:.1%} (more "
                    f"than {tolerance:.0%} relative) - a striding "
                    f"tier stopped engaging"
                )
        print(f"{key:<16} {base_speedup:>8.2f}x {fresh_speedup:>8.2f}x "
              f"{change:>+7.1%}  {verdict}{share_note}")
        if regressed:
            failures.append(
                f"{key}: speedup {fresh_speedup:.2f}x is more than "
                f"{tolerance:.0%} below the baseline "
                f"{base_speedup:.2f}x"
            )
    extra = sorted(set(fresh_workloads) - set(baseline_workloads))
    if extra:
        # No speedup anchor to compare against, but the profile
        # schema still applies to brand-new workloads.
        for key in extra:
            failures.extend(
                validate_profile_schema(key, fresh_workloads[key])
            )
        print(f"(not in baseline, unchecked: {', '.join(extra)})")
    failures.extend(compare_outcomes(fresh, baseline))
    return failures


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on engine-benchmark speedup regressions "
                    "against the committed baseline."
    )
    parser.add_argument(
        "fresh", metavar="BENCH_ENGINE_JSON",
        help="the freshly generated BENCH_engine.json",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE), metavar="JSON",
        help="committed baseline artifact "
             "(default: benchmarks/engine_baseline.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2, metavar="FRACTION",
        help="allowed fractional ratio drop before failing "
             "(default: 0.2 = 20%%)",
    )
    args = parser.parse_args(argv)
    fresh = json.loads(Path(args.fresh).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    failures = compare(fresh, baseline, args.tolerance)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all workloads within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
