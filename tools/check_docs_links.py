#!/usr/bin/env python3
"""Check that every intra-repo markdown link resolves.

Scans the documentation surface (``README.md`` and ``docs/*.md``) for
markdown links and verifies that every relative target exists in the
repository.  External links (``http(s)://``, ``mailto:``) and pure
in-page anchors are skipped; a ``path#fragment`` target is checked
for the path only (fragment validity is the renderer's problem, file
existence is ours).

Exits non-zero listing every broken link, so CI fails loudly when a
doc split or rename leaves a dangling reference.  Stdlib only.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The files whose links are checked (the curated doc surface; the
#: research-notes files PAPERS.md/SNIPPETS.md carry verbatim external
#: material and are deliberately out of scope).
DOC_GLOBS = ("README.md", "docs/*.md")

#: Inline markdown links: [text](target).  Images ![alt](target) are
#: matched too via the optional leading bang.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced code blocks must not contribute false links.
FENCE_PATTERN = re.compile(r"^(```|~~~)")


def iter_links(path: Path):
    """Yield (line_number, target) for every markdown link in a file."""
    in_fence = False
    for number, line in enumerate(
        path.read_text().splitlines(), start=1
    ):
        if FENCE_PATTERN.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_PATTERN.finditer(line):
            yield number, match.group(1)


def check_file(path: Path) -> list:
    """Return ``(line, target, reason)`` for every broken link."""
    broken = []
    for number, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            continue  # in-page anchor
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append((number, target, "target does not exist"))
        elif REPO_ROOT not in resolved.parents \
                and resolved != REPO_ROOT:
            broken.append((number, target, "escapes the repository"))
    return broken


def main() -> int:
    files = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    if not files:
        print("no documentation files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        for number, target, reason in check_file(path):
            failures += 1
            print(
                f"{path.relative_to(REPO_ROOT)}:{number}: "
                f"broken link {target!r} ({reason})",
                file=sys.stderr,
            )
    checked = len(files)
    if failures:
        print(
            f"{failures} broken link(s) across {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"all intra-repo links resolve across {checked} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
