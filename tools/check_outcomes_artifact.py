"""Validate the ``outcomes`` block a BENCH artifact carries.

Every ``BENCH_*.json`` the evaluation runner emits is stamped with an
``outcomes`` summary from the supervised batch plane: how many jobs
settled ok, how many attempts failed / timed out / lost their worker,
how many retries and engine degradations happened, and how many
corrupt cache entries were quarantined.  A benchmark artifact whose
run silently retried or degraded jobs is not comparable - wall clocks
include the wasted attempts and degraded jobs ran the slow engine -
so CI validates the block on the artifacts it uploads.

Stdlib-only on purpose (runs before any dependency install).

Usage::

    python tools/check_outcomes_artifact.py BENCH_engine.json
    python tools/check_outcomes_artifact.py chaos.json --allow-faults

Rules:

* the artifact must carry an ``outcomes`` mapping;
* every counter in :data:`REQUIRED_KEYS` must be present as a
  non-negative integer (unknown extra keys are ignored - the schema
  may grow);
* unless ``--allow-faults``, every fault-class counter
  (:data:`FAULT_KEYS`) must be zero: a tier-1 benchmark run that
  recorded a retry, timeout, crash, degradation, or cache quarantine
  fails the check.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Counters every outcomes block must carry
#: (:func:`repro.sim.resilience.outcomes_snapshot` schema).
REQUIRED_KEYS = (
    "ok", "degraded", "failed", "timed_out", "worker_crashed",
    "retries", "cache_quarantined",
)

#: The subset that must be zero on a clean benchmark run.
FAULT_KEYS = (
    "degraded", "failed", "timed_out", "worker_crashed", "retries",
    "cache_quarantined",
)


def check(payload: dict, allow_faults: bool = False) -> list:
    """Failure strings for one artifact payload (empty = pass)."""
    outcomes = payload.get("outcomes")
    if not isinstance(outcomes, dict):
        return [
            f"artifact has no 'outcomes' mapping "
            f"(got {type(outcomes).__name__})"
        ]
    failures = []
    for key in REQUIRED_KEYS:
        value = outcomes.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            failures.append(
                f"outcomes[{key!r}] must be an integer, got "
                f"{value!r}"
            )
        elif value < 0:
            failures.append(
                f"outcomes[{key!r}] is negative: {value}"
            )
    if failures:
        return failures
    if not allow_faults:
        dirty = {
            key: outcomes[key] for key in FAULT_KEYS
            if outcomes[key] != 0
        }
        if dirty:
            failures.append(
                "benchmark run recorded supervised-job faults: "
                + ", ".join(
                    f"{key}={value}" for key, value in dirty.items()
                )
                + " (wall clocks from a faulting run are not "
                  "comparable; rerun or pass --allow-faults for "
                  "chaos artifacts)"
            )
    return failures


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a BENCH artifact's outcomes block and "
                    "fail if the run recorded supervised-job faults."
    )
    parser.add_argument(
        "artifact", metavar="BENCH_JSON",
        help="a BENCH_*.json emitted by repro.eval.runner",
    )
    parser.add_argument(
        "--allow-faults", action="store_true",
        help="only validate the schema; permit nonzero fault "
             "counters (chaos-harness artifacts)",
    )
    args = parser.parse_args(argv)
    payload = json.loads(Path(args.artifact).read_text())
    failures = check(payload, allow_faults=args.allow_faults)
    outcomes = payload.get("outcomes")
    if isinstance(outcomes, dict):
        print("outcomes:", json.dumps(outcomes, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("outcomes block valid"
          + ("" if args.allow_faults else " and fault-free"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
