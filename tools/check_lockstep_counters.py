"""Assert the compiled engine's striding tiers engaged in a bench run.

The speedup floors catch a perf regression only on full-size runs;
what they cannot see is a *guard* regression - a change that makes
lockstep rounds, fused comm-headed runner calls, or orbit laps
silently stop engaging while the dense fallback still produces
correct (bit-identical) statistics at a fraction of the speed.  On
smoke-sized CI runs the wall clocks are noise but the event counters
are exact, so this tool reads a profiled ``BENCH_engine.json`` and
fails when any watched counter is zero on a workload that is known
to drive it.

``ddc_pipeline`` is the canonical probe: live DOUs on every bus keep
the orbit batcher, the lockstep compiler, and the comm-headed run
fusion all active even at smoke sizes.

Usage::

    python tools/check_lockstep_counters.py BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# workload -> profile counters that must be strictly positive there.
REQUIRED_COUNTERS = {
    "ddc_pipeline": (
        "lockstep_batches",
        "orbit_laps",
        "fused_runner_calls",
    ),
}


def check(payload: dict) -> list:
    """Returns a list of failure strings (empty = pass)."""
    failures = []
    workloads = payload.get("workloads", {})
    for key, counters in REQUIRED_COUNTERS.items():
        entry = workloads.get(key)
        if entry is None:
            failures.append(f"workload {key!r} missing from artifact")
            continue
        profile = entry.get("profile")
        if not isinstance(profile, dict):
            failures.append(
                f"{key}: no profile attached - run the bench with "
                f"--profile"
            )
            continue
        for counter in counters:
            value = profile.get(counter, 0)
            status = "ok" if value > 0 else "NOT ENGAGED"
            print(f"{key:<16} {counter:<20} {value:>8}  {status}")
            if value <= 0:
                failures.append(
                    f"{key}: {counter} is {value} - the tier never "
                    f"engaged"
                )
    return failures


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a compiled-engine striding tier did "
                    "not engage in a profiled benchmark artifact."
    )
    parser.add_argument(
        "artifact", metavar="BENCH_ENGINE_JSON",
        help="a BENCH_engine.json produced with --profile",
    )
    args = parser.parse_args(argv)
    payload = json.loads(Path(args.artifact).read_text())
    if payload.get("artifact") != "BENCH_engine":
        print(
            f"FAIL: not a BENCH_engine artifact: "
            f"{payload.get('artifact')!r}",
            file=sys.stderr,
        )
        return 1
    failures = check(payload)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all watched striding counters engaged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
