"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package,
so PEP 517 editable installs (which build a wheel) fail.  This shim
lets ``pip install -e .`` fall back to ``setup.py develop``.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
